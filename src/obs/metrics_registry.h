// Named metrics for a simulation run: monotonic counters, last-value gauges,
// and sample histograms, with deterministic JSON snapshot export. Components
// (fabric, server, cluster) hold a `MetricsRegistry*` that is nullptr when
// telemetry is off; when attached, one registry accumulates a whole run and
// its snapshot lands in the bench's BENCH_<name>.json report.
//
// Naming convention: dotted lowercase paths, component first —
//   fabric.transfers, fabric.bytes,
//   server.requests, server.cold_starts, server.warm_hits, server.evictions,
//   server.queue_depth.gpu<g>, server.latency_ms (histogram),
//   cluster.routed.server<k>.
//
// Export order is the sorted metric name, so identical runs render to
// identical bytes regardless of the order metrics were first touched.
#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/util/histogram.h"
#include "src/util/json.h"
#include "src/util/stats.h"

namespace deepplan {

class MetricsRegistry {
 public:
  void AddCounter(const std::string& name, std::int64_t delta = 1);
  // 0 when the counter was never touched.
  std::int64_t counter(const std::string& name) const;

  void SetGauge(const std::string& name, double value);
  double gauge(const std::string& name) const;

  void Observe(const std::string& name, double sample);
  HistogramSummary histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,max,
  // p50,p95,p99}}} with sorted keys; empty sections are omitted.
  JsonObject Snapshot() const;
  JsonObject ToJsonObject() const { return Snapshot(); }  // legacy name
  std::string ToJson() const { return Snapshot().Render(); }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Percentiles> histograms_;
};

}  // namespace deepplan

#endif  // SRC_OBS_METRICS_REGISTRY_H_
