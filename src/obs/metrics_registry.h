// Named metrics for a simulation run: monotonic counters, last-value gauges,
// and sample histograms, with deterministic JSON snapshot export. Components
// (fabric, server, cluster) hold a `MetricsRegistry*` that is nullptr when
// telemetry is off; when attached, one registry accumulates a whole run and
// its snapshot lands in the bench's BENCH_<name>.json report.
//
// Naming convention: dotted lowercase paths, component first —
//   fabric.transfers, fabric.bytes,
//   server.requests, server.cold_starts, server.warm_hits, server.evictions,
//   server.queue_depth.gpu<g>, server.latency_ms (histogram),
//   cluster.routed.server<k>.
//
// Export order is the sorted metric name, so identical runs render to
// identical bytes regardless of the order metrics were first touched.
//
// Internally synchronized (GUARDED_BY mu_): the registry can be shared across
// threads — e.g. a JournalWriter bumping journal.* counters from whichever
// thread retires a request — *without* breaking determinism, because every
// mutation is commutative (counter adds, gauge last-write per distinct name,
// histogram sample multiset) and the export is sorted. The one caveat is
// gauges: concurrent SetGauge on the *same* name is last-write-wins and so
// timing-dependent; writers of a given gauge name must stay single-threaded.
#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/util/histogram.h"
#include "src/util/json.h"
#include "src/util/stats.h"
#include "src/util/thread_annotations.h"

namespace deepplan {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  // Movable so sweep tasks can return a registry inside their result struct
  // (SweepRunner task-index slots). Moves run under the standard exclusive-
  // access contract — no other thread may touch either object during the
  // move, which is exactly the hand-off situation they exist for — so they
  // deliberately bypass the lock; each object keeps its own (non-movable)
  // mutex.
  MetricsRegistry(MetricsRegistry&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void AddCounter(const std::string& name, std::int64_t delta = 1)
      EXCLUDES(mu_);
  // 0 when the counter was never touched.
  std::int64_t counter(const std::string& name) const EXCLUDES(mu_);

  void SetGauge(const std::string& name, double value) EXCLUDES(mu_);
  double gauge(const std::string& name) const EXCLUDES(mu_);

  void Observe(const std::string& name, double sample) EXCLUDES(mu_);
  HistogramSummary histogram(const std::string& name) const EXCLUDES(mu_);

  bool empty() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,min,max,
  // p50,p95,p99}}} with sorted keys; empty sections are omitted.
  JsonObject Snapshot() const EXCLUDES(mu_);
  JsonObject ToJsonObject() const { return Snapshot(); }  // legacy name
  std::string ToJson() const { return Snapshot().Render(); }

 private:
  // Summarizes a by-value copy so Snapshot() can render histograms without
  // re-entering the (non-recursive) lock via histogram(). The copy is load-
  // bearing either way: Percentile() sorts lazily, mutating the instance.
  static HistogramSummary SummaryOf(Percentiles pct);

  mutable Mutex mu_;
  std::map<std::string, std::int64_t> counters_ GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Percentiles> histograms_ GUARDED_BY(mu_);
};

}  // namespace deepplan

#endif  // SRC_OBS_METRICS_REGISTRY_H_
