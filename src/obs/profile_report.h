// Profile report: the user-facing product of the obs analysis layer. Takes a
// causal journal, runs the critical-path engine and the utilization module,
// and renders the result two ways:
//
//   PrintProfileReport  deterministic text tables (per-process attribution,
//                       bottleneck ranking, resource utilization) for humans
//   ProfileReportJson   stable machine-readable document
//                       {"profile_report":{...}} for tools and the trace
//                       linter's schema check
//
// Consumed by tools/profile_report (offline, from a journal file) and by the
// bench binaries' --profile_out flag (inline, from the run's own graph).
#ifndef SRC_OBS_PROFILE_REPORT_H_
#define SRC_OBS_PROFILE_REPORT_H_

#include <ostream>
#include <string>

#include "src/obs/causal_graph.h"
#include "src/obs/critical_path.h"
#include "src/obs/utilization.h"

namespace deepplan {

// Per-process rollup of request attributions.
struct ProcessProfile {
  int process = 0;
  std::string name;
  int requests = 0;
  int cold_requests = 0;
  CpAttribution attribution;  // summed over the process's requests
  Nanos total_latency = 0;
  Nanos exec_busy = 0;
};

struct ProfileReport {
  ProfileSummary summary;            // per-request attributions
  std::vector<ProcessProfile> processes;  // in process-id order
  UtilizationReport utilization;
  // Name of the dominant attribution component across all requests
  // ("queue", "evict", "pcie", "pcie_contention", "nvlink", "exec", "sync"),
  // empty when the journal holds no completed requests.
  std::string bottleneck;
};

ProfileReport BuildProfileReport(const CausalGraph& graph);

// Deterministic text rendering (tables + bottleneck line).
void PrintProfileReport(const ProfileReport& report, std::ostream& os);

// {"profile_report":{"requests":N,"cold_requests":N,"bottleneck":...,
//  "totals":{...},"processes":[...],"per_request":[...],"utilization":[...]}}
std::string ProfileReportJson(const ProfileReport& report);

}  // namespace deepplan

#endif  // SRC_OBS_PROFILE_REPORT_H_
