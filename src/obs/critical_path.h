// Critical-path engine: walks each request's causal DAG backwards from its
// terminal node to its arrival node and attributes every nanosecond of the
// end-to-end latency to one cause. The walk keeps a time cursor that starts
// at completion and descends monotonically to arrival; each decrement is
// charged exactly once, so the components sum to the latency with integer-ns
// exactness (enforced by SimValidator::OnAttribution and by tests).
//
// Attribution taxonomy (superset of the paper's Fig. 2 decomposition):
//   queue            waiting in the server queue before any work started
//   evict            LRU teardown making room for the cold start
//   pcie             host->GPU transfer time at contention-free speed
//   pcie_contention  excess transfer time over solo speed (fair-share loss)
//   nvlink           GPU->GPU migration time
//   exec             layer execution on the critical path
//   sync             scheduling gaps between dependent ops (event waits,
//                    stream handoffs) not explained by any category above
//
// Contention accounting: transfer nodes carry `solo_ns`, the duration the
// same transfer would take alone on its path (same ceil-to-ns rounding and
// latency tail the fabric applies). Fair sharing can only slow a transfer
// down, so actual >= solo and the excess is charged to pcie_contention.
//
// `exec_busy` is reported alongside the path attribution: the sum of ALL exec
// node durations for the request, on-path or not. Pipelined strategies
// overlap execution with transfers, pushing exec work off the critical path;
// latency - exec_busy is exactly the hand-computed stall of Fig. 2, which is
// how bench/fig02 cross-checks this engine against the simulator's own
// numbers.
#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <vector>

#include "src/obs/causal_graph.h"
#include "src/util/time.h"

namespace deepplan {

struct CpAttribution {
  Nanos queue = 0;
  Nanos evict = 0;
  Nanos pcie = 0;
  Nanos pcie_contention = 0;
  Nanos nvlink = 0;
  Nanos exec = 0;
  Nanos sync = 0;

  Nanos Total() const {
    return queue + evict + pcie + pcie_contention + nvlink + exec + sync;
  }
  CpAttribution& operator+=(const CpAttribution& other);
};

struct RequestProfile {
  int request = -1;
  int process = 0;
  int instance = -1;
  bool cold = false;
  Nanos arrival = 0;
  Nanos completion = 0;
  Nanos latency = 0;            // completion - arrival == attribution.Total()
  CpAttribution attribution;
  Nanos exec_busy = 0;          // sum of all exec nodes, on-path or not
  std::vector<CpNodeId> path;   // critical path, arrival -> terminal
};

struct ProfileSummary {
  std::vector<RequestProfile> requests;  // in request-id order
  CpAttribution total;                   // sum over all requests
  Nanos total_latency = 0;
  int cold_requests = 0;
};

// Attributes every completed request in `graph`. Requests that never ended
// (completion < 0) are skipped. Deterministic: same graph -> same summary.
ProfileSummary AnalyzeCriticalPaths(const CausalGraph& graph);

}  // namespace deepplan

#endif  // SRC_OBS_CRITICAL_PATH_H_
