#include "src/obs/selfprof.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/util/json.h"
#include "src/util/logging.h"

namespace deepplan {
namespace selfprof {

namespace internal {
thread_local SelfProfiler* g_lane = nullptr;
}  // namespace internal

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kTotal:
      return "total";
    case Phase::kSetup:
      return "point.setup";
    case Phase::kWorkloadGen:
      return "workload.generate";
    case Phase::kWarmup:
      return "server.warmup";
    case Phase::kSimDispatch:
      return "sim.dispatch";
    case Phase::kColdStart:
      return "engine.cold_start";
    case Phase::kFairShare:
      return "fabric.fair_share";
    case Phase::kExecStream:
      return "exec.stream";
    case Phase::kValidate:
      return "check.validate";
    case Phase::kJournalSerialize:
      return "journal.serialize";
    case Phase::kTraceSerialize:
      return "trace.serialize";
    case Phase::kMetricsSnapshot:
      return "metrics.snapshot";
    case Phase::kReportRender:
      return "report.render";
  }
  return "?";
}

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kEventsDispatched:
      return "events_dispatched";
    case Counter::kValidatorChecks:
      return "validator_checks";
    case Counter::kHeartbeats:
      return "heartbeats";
  }
  return "?";
}

bool CounterDeterministic(Counter counter) {
  // Heartbeat cadence is a function of real time, not of the simulated run.
  return counter != Counter::kHeartbeats;
}

std::int64_t MonotonicNowNs() {
  // deepplan-lint: allow(raw-entropy, the self-profiler's one monotonic clock read; results live only under *_ns keys the determinism gates strip)
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
}

namespace {

std::int64_t ReadProcStatusKb(const char* key) {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  if (!status) {
    return 0;
  }
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.compare(0, key_len, key) == 0) {
      return std::strtoll(line.c_str() + key_len, nullptr, 10);
    }
  }
  return 0;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::int64_t CurrentRssKb() { return ReadProcStatusKb("VmRSS:"); }
std::int64_t PeakRssKb() { return ReadProcStatusKb("VmHWM:"); }

SelfProfiler::SelfProfiler() {
  Node root;
  root.phase = Phase::kTotal;
  root.parent = -1;
  root.child.fill(-1);
  nodes_.push_back(root);
}

std::int32_t SelfProfiler::FindOrAddChild(std::int32_t parent, Phase phase) {
  const auto slot = static_cast<std::size_t>(phase);
  const std::int32_t existing = nodes_[static_cast<std::size_t>(parent)].child[slot];
  if (existing >= 0) {
    return existing;
  }
  Node node;
  node.phase = phase;
  node.parent = parent;
  node.child.fill(-1);
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);
  nodes_[static_cast<std::size_t>(parent)].child[slot] = index;
  return index;
}

void SelfProfiler::MergeSubtree(std::int32_t dst, const SelfProfiler& other,
                                std::int32_t src) {
  const Node& from = other.nodes_[static_cast<std::size_t>(src)];
  Node& to = nodes_[static_cast<std::size_t>(dst)];
  to.count += from.count;
  to.sampled += from.sampled;
  to.inclusive_ns += from.inclusive_ns;
  for (int slot = 0; slot < kNumPhases; ++slot) {
    const std::int32_t child = from.child[static_cast<std::size_t>(slot)];
    if (child >= 0) {
      const std::int32_t mine =
          FindOrAddChild(dst, other.nodes_[static_cast<std::size_t>(child)].phase);
      MergeSubtree(mine, other, child);
    }
  }
}

void SelfProfiler::Merge(const SelfProfiler& other) {
  DP_CHECK(closed());
  DP_CHECK(other.closed());
  MergeSubtree(0, other, 0);
  for (int c = 0; c < kNumCounters; ++c) {
    counters_[c] += other.counters_[c];
  }
}

namespace {

std::uint64_t EstimatedNs(const SelfProfiler::Node& node) {
  if (node.sampled == 0) {
    return 0;
  }
  if (node.sampled == node.count) {
    return node.inclusive_ns;
  }
  return static_cast<std::uint64_t>(
      static_cast<double>(node.inclusive_ns) *
      (static_cast<double>(node.count) / static_cast<double>(node.sampled)));
}

std::string NodeJson(const SelfProfiler& lane, std::int32_t index,
                     bool deterministic) {
  const SelfProfiler::Node& node =
      lane.nodes()[static_cast<std::size_t>(index)];
  JsonObject out;
  out.Set("phase", PhaseName(node.phase))
      .Set("count", static_cast<std::int64_t>(node.count))
      .Set("sampled", static_cast<std::int64_t>(node.sampled));
  if (!deterministic) {
    std::uint64_t children_ns = 0;
    for (int slot = 0; slot < kNumPhases; ++slot) {
      const std::int32_t child = node.child[static_cast<std::size_t>(slot)];
      if (child >= 0) {
        children_ns +=
            lane.nodes()[static_cast<std::size_t>(child)].inclusive_ns;
      }
    }
    // The suppression rule (timed entries only run under timed ancestors)
    // makes this subtraction exact and non-negative; the selfprof lint
    // re-checks it on every report.
    DP_CHECK(children_ns <= node.inclusive_ns);
    out.Set("inclusive_ns", static_cast<std::int64_t>(node.inclusive_ns))
        .Set("exclusive_ns",
             static_cast<std::int64_t>(node.inclusive_ns - children_ns))
        .Set("estimated_ns", static_cast<std::int64_t>(EstimatedNs(node)));
  }
  JsonArray children;
  for (int slot = 0; slot < kNumPhases; ++slot) {
    const std::int32_t child = node.child[static_cast<std::size_t>(slot)];
    if (child >= 0) {
      children.AddRaw(NodeJson(lane, child, deterministic));
    }
  }
  if (!children.empty()) {
    out.SetRaw("children", children.Render());
  }
  return out.Render();
}

std::string CountersJson(const SelfProfiler& lane, bool deterministic) {
  JsonObject out;
  for (int c = 0; c < kNumCounters; ++c) {
    const auto counter = static_cast<Counter>(c);
    if (deterministic && !CounterDeterministic(counter)) {
      continue;
    }
    out.Set(CounterName(counter),
            static_cast<std::int64_t>(lane.counter(counter)));
  }
  return out.Render();
}

std::string LaneJson(const LaneView& view, bool deterministic) {
  DP_CHECK(view.lane != nullptr);
  DP_CHECK(view.lane->closed());  // reports are built from finished lanes
  JsonObject out;
  out.Set("name", view.name)
      .SetRaw("counters", CountersJson(*view.lane, deterministic))
      .SetRaw("tree", NodeJson(*view.lane, 0, deterministic));
  return out.Render();
}

std::string BuildReport(const std::string& label,
                        const std::vector<LaneView>& lanes,
                        bool deterministic) {
  JsonObject body;
  body.Set("schema_version", std::int64_t{kSelfprofSchemaVersion})
      .Set("label", label);
  JsonArray lane_array;
  SelfProfiler aggregate;
  for (const LaneView& view : lanes) {
    lane_array.AddRaw(LaneJson(view, deterministic));
    aggregate.Merge(*view.lane);
  }
  body.SetRaw("lanes", lane_array.Render());
  body.SetRaw("aggregate",
              LaneJson(LaneView{"aggregate", &aggregate}, deterministic));
  if (!deterministic) {
    body.SetRaw("host", JsonObject()
                            .Set("rss_kb", CurrentRssKb())
                            .Set("rss_peak_kb", PeakRssKb())
                            .Render());
  }
  JsonObject top;
  top.SetRaw("selfprof_report", body.Render());
  return top.Render();
}

}  // namespace

std::string ReportJson(const std::string& label,
                       const std::vector<LaneView>& lanes) {
  return BuildReport(label, lanes, /*deterministic=*/false);
}

std::string DeterministicReportJson(const std::string& label,
                                    const std::vector<LaneView>& lanes) {
  return BuildReport(label, lanes, /*deterministic=*/true);
}

bool WriteReport(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << json << "\n";
  return static_cast<bool>(out);
}

}  // namespace selfprof
}  // namespace deepplan
