#include "src/obs/profile_report.h"

#include <algorithm>
#include <utility>

#include "src/util/json.h"
#include "src/util/table.h"
#include "src/util/time.h"

namespace deepplan {

namespace {

// Attribution components in report order, paired with display names.
struct Component {
  const char* name;
  Nanos CpAttribution::* field;
};

constexpr Component kComponents[] = {
    {"queue", &CpAttribution::queue},
    {"evict", &CpAttribution::evict},
    {"pcie", &CpAttribution::pcie},
    {"pcie_contention", &CpAttribution::pcie_contention},
    {"nvlink", &CpAttribution::nvlink},
    {"exec", &CpAttribution::exec},
    {"sync", &CpAttribution::sync},
};

std::string DominantComponent(const CpAttribution& a) {
  const char* best = "";
  Nanos best_value = 0;
  for (const Component& c : kComponents) {
    // Strict > keeps the first (report-order) component on ties.
    if (a.*(c.field) > best_value) {
      best = c.name;
      best_value = a.*(c.field);
    }
  }
  return best;
}

std::string AttributionJson(const CpAttribution& a) {
  JsonObject obj;
  for (const Component& c : kComponents) {
    obj.Set(std::string(c.name) + "_ns", static_cast<std::int64_t>(a.*(c.field)));
  }
  return obj.Render();
}

}  // namespace

ProfileReport BuildProfileReport(const CausalGraph& graph) {
  ProfileReport report;
  report.summary = AnalyzeCriticalPaths(graph);
  report.utilization = ComputeUtilization(graph);

  report.processes.resize(graph.processes().size());
  for (std::size_t i = 0; i < graph.processes().size(); ++i) {
    report.processes[i].process = static_cast<int>(i);
    report.processes[i].name = graph.processes()[i];
  }
  for (const RequestProfile& rp : report.summary.requests) {
    if (rp.process < 0 ||
        rp.process >= static_cast<int>(report.processes.size())) {
      continue;
    }
    ProcessProfile& pp = report.processes[static_cast<std::size_t>(rp.process)];
    ++pp.requests;
    if (rp.cold) {
      ++pp.cold_requests;
    }
    pp.attribution += rp.attribution;
    pp.total_latency += rp.latency;
    pp.exec_busy += rp.exec_busy;
  }
  if (!report.summary.requests.empty()) {
    report.bottleneck = DominantComponent(report.summary.total);
  }
  return report;
}

void PrintProfileReport(const ProfileReport& report, std::ostream& os) {
  const ProfileSummary& summary = report.summary;
  os << "== profile report ==\n";
  os << "requests: " << summary.requests.size() << " ("
     << summary.cold_requests << " cold), total latency "
     << Table::Num(ToMillis(summary.total_latency)) << " ms\n";
  if (summary.requests.empty()) {
    os << "(no completed requests in journal)\n";
    return;
  }
  os << "bottleneck: " << report.bottleneck << " ("
     << Table::Pct(static_cast<double>([&] {
          for (const Component& c : kComponents) {
            if (report.bottleneck == c.name) {
              return summary.total.*(c.field);
            }
          }
          return Nanos{0};
        }()) /
        static_cast<double>(std::max<Nanos>(1, summary.total_latency)))
     << " of total latency)\n\n";

  os << "-- critical-path attribution by process (ms) --\n";
  Table attribution({"process", "reqs", "cold", "queue", "evict", "pcie",
                     "pcie_cont", "nvlink", "exec", "sync", "total"});
  for (const ProcessProfile& pp : report.processes) {
    if (pp.requests == 0) {
      continue;
    }
    attribution.AddRow({pp.name, std::to_string(pp.requests),
                        std::to_string(pp.cold_requests),
                        Table::Num(ToMillis(pp.attribution.queue)),
                        Table::Num(ToMillis(pp.attribution.evict)),
                        Table::Num(ToMillis(pp.attribution.pcie)),
                        Table::Num(ToMillis(pp.attribution.pcie_contention)),
                        Table::Num(ToMillis(pp.attribution.nvlink)),
                        Table::Num(ToMillis(pp.attribution.exec)),
                        Table::Num(ToMillis(pp.attribution.sync)),
                        Table::Num(ToMillis(pp.attribution.Total()))});
  }
  attribution.Print(os);

  os << "\n-- totals across all requests (ms) --\n";
  Table totals({"component", "time", "share"});
  for (const Component& c : kComponents) {
    const Nanos value = summary.total.*(c.field);
    totals.AddRow({c.name, Table::Num(ToMillis(value)),
                   Table::Pct(static_cast<double>(value) /
                              static_cast<double>(
                                  std::max<Nanos>(1, summary.total_latency)))});
  }
  totals.Print(os);

  if (!report.utilization.resources.empty()) {
    os << "\n-- resource utilization --\n";
    Table util({"process", "resource", "kind", "busy_ms", "contended_ms",
                "span_ms", "util"});
    for (const ResourceTimeline& rt : report.utilization.resources) {
      const std::string process_name =
          rt.process >= 0 && rt.process < static_cast<int>(report.processes.size())
              ? report.processes[static_cast<std::size_t>(rt.process)].name
              : std::to_string(rt.process);
      util.AddRow({process_name, rt.resource, rt.kind,
                   Table::Num(ToMillis(rt.busy)),
                   Table::Num(ToMillis(rt.contended)),
                   Table::Num(ToMillis(rt.span)), Table::Pct(rt.utilization)});
    }
    util.Print(os);
  }
}

std::string ProfileReportJson(const ProfileReport& report) {
  const ProfileSummary& summary = report.summary;

  JsonArray processes;
  for (const ProcessProfile& pp : report.processes) {
    processes.AddRaw(
        JsonObject()
            .Set("process", pp.process)
            .Set("name", pp.name)
            .Set("requests", pp.requests)
            .Set("cold_requests", pp.cold_requests)
            .SetRaw("attribution", AttributionJson(pp.attribution))
            .Set("total_latency_ns",
                 static_cast<std::int64_t>(pp.total_latency))
            .Set("exec_busy_ns", static_cast<std::int64_t>(pp.exec_busy))
            .Render());
  }

  JsonArray per_request;
  for (const RequestProfile& rp : summary.requests) {
    JsonArray path;
    for (const CpNodeId id : rp.path) {
      path.Add(id);
    }
    per_request.AddRaw(
        JsonObject()
            .Set("request", rp.request)
            .Set("process", rp.process)
            .Set("instance", rp.instance)
            .Set("cold", rp.cold)
            .Set("arrival_ns", static_cast<std::int64_t>(rp.arrival))
            .Set("completion_ns", static_cast<std::int64_t>(rp.completion))
            .Set("latency_ns", static_cast<std::int64_t>(rp.latency))
            .SetRaw("attribution", AttributionJson(rp.attribution))
            .Set("exec_busy_ns", static_cast<std::int64_t>(rp.exec_busy))
            .SetRaw("path", path.Render())
            .Render());
  }

  JsonArray utilization;
  for (const ResourceTimeline& rt : report.utilization.resources) {
    utilization.AddRaw(
        JsonObject()
            .Set("process", rt.process)
            .Set("resource", rt.resource)
            .Set("kind", rt.kind)
            .Set("busy_ns", static_cast<std::int64_t>(rt.busy))
            .Set("contended_ns", static_cast<std::int64_t>(rt.contended))
            .Set("span_ns", static_cast<std::int64_t>(rt.span))
            .Set("utilization", rt.utilization)
            .Set("intervals", static_cast<std::int64_t>(rt.intervals.size()))
            .Render());
  }

  JsonObject body;
  body.Set("requests", static_cast<std::int64_t>(summary.requests.size()))
      .Set("cold_requests", summary.cold_requests)
      .Set("bottleneck", report.bottleneck)
      .Set("total_latency_ns", static_cast<std::int64_t>(summary.total_latency))
      .SetRaw("totals", AttributionJson(summary.total))
      .SetRaw("processes", processes.Render())
      .SetRaw("per_request", per_request.Render())
      .SetRaw("utilization", utilization.Render());

  JsonObject doc;
  doc.SetRaw("profile_report", body.Render());
  return doc.Render();
}

}  // namespace deepplan
