// What-if report: the user-facing product of the replay engine. Runs a set
// of virtual hardware experiments over one causal journal and renders the
// predicted latency shifts two ways:
//
//   PrintWhatIfReport  deterministic text tables (per-experiment quantiles,
//                      ranked knob sensitivity) for humans
//   WhatIfReportJson   stable machine-readable document
//                      {"whatif_report":{...}} for tools and the trace
//                      linter's schema check (trace_lint --whatif)
//
// Consumed by tools/whatif_report (offline, from a journal file) and by the
// bench binaries' --whatif_out flag (inline, from the run's own graph).
//
// Every report starts with an identity replay; `baseline_matches_journal`
// says whether it reproduced each recorded request latency exactly, which is
// the self-check that licenses trusting the perturbed predictions.
#ifndef SRC_OBS_WHATIF_WHATIF_REPORT_H_
#define SRC_OBS_WHATIF_WHATIF_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/obs/causal_graph.h"
#include "src/obs/whatif/whatif.h"
#include "src/util/time.h"

namespace deepplan {

// Latency distribution summary (milliseconds, linear-interpolated quantiles).
struct WhatIfQuantiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

// One request's predicted latency under one experiment. `baseline_ns` is the
// journal's recorded latency; delta = predicted - baseline (negative means
// the virtual hardware made the request faster).
struct WhatIfPerRequest {
  int request = -1;
  int process = 0;
  bool cold = false;
  Nanos baseline_ns = 0;
  Nanos predicted_ns = 0;
  Nanos delta_ns = 0;
};

// Per-process rollup of one experiment's predictions.
struct WhatIfProcessOutcome {
  int process = 0;
  std::string name;
  int requests = 0;
  WhatIfQuantiles baseline;
  WhatIfQuantiles predicted;
};

struct WhatIfOutcome {
  WhatIfExperiment experiment;
  WhatIfQuantiles predicted;
  std::vector<WhatIfProcessOutcome> processes;  // processes with requests only
  std::vector<WhatIfPerRequest> per_request;    // in request-id order
};

// How much tail latency one knob buys: re-run at a +1% hardware speedup and
// measure the quantile shift. `leverage_p99` is the exchange rate — how many
// nanoseconds of p99 one nanosecond shaved off the knob's per-request time
// buys ("1 ns of PCIe buys X ns of p99").
struct WhatIfSensitivity {
  std::string knob;  // "pcie" | "nvlink" | "exec"
  double delta_p50_ms = 0.0;  // baseline minus perturbed (positive = saves)
  double delta_p95_ms = 0.0;
  double delta_p99_ms = 0.0;
  double knob_time_mean_ms = 0.0;  // mean per-request time the knob governs
  double leverage_p99 = 0.0;
};

struct WhatIfReport {
  int requests = 0;          // completed requests replayed
  int skipped_requests = 0;  // journal-incomplete, excluded from replay
  bool baseline_matches_journal = false;
  WhatIfQuantiles baseline;  // recorded journal latencies
  std::vector<std::string> processes;
  std::vector<WhatIfOutcome> outcomes;          // in experiment order
  std::vector<WhatIfSensitivity> sensitivity;   // ranked by delta_p99 desc
};

WhatIfReport BuildWhatIfReport(const CausalGraph& graph,
                               const std::vector<WhatIfExperiment>& experiments);

// Same report, computed over a binary journal via the bounded-memory
// windowed replay engine. Byte-identical JSON/text output to
// BuildWhatIfReport on the equivalent in-memory graph (the two share the
// aggregation core; only the replay data plane differs).
WhatIfReport BuildWhatIfReportWindowed(
    WindowedJournal& journal, const std::vector<WhatIfExperiment>& experiments);

// Deterministic text rendering (experiment + sensitivity tables).
void PrintWhatIfReport(const WhatIfReport& report, std::ostream& os);

// {"whatif_report":{"requests":N,"skipped_requests":N,
//  "baseline_matches_journal":B,"baseline":{...},"processes":[...],
//  "experiments":[...],"sensitivity":[...]}}
std::string WhatIfReportJson(const WhatIfReport& report);

}  // namespace deepplan

#endif  // SRC_OBS_WHATIF_WHATIF_REPORT_H_
