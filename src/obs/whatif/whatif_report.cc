#include "src/obs/whatif/whatif_report.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "src/util/index.h"
#include "src/util/json.h"
#include "src/util/logging.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace deepplan {

namespace {

WhatIfQuantiles QuantilesOf(const std::vector<Nanos>& latencies) {
  Percentiles p;
  for (const Nanos v : latencies) {
    if (v >= 0) {
      p.Add(ToMillis(v));
    }
  }
  WhatIfQuantiles q;
  if (p.empty()) {
    return q;
  }
  q.p50_ms = p.Percentile(50.0);
  q.p95_ms = p.Percentile(95.0);
  q.p99_ms = p.Percentile(99.0);
  q.mean_ms = p.Mean();
  q.max_ms = p.Max();
  return q;
}

double MeanMsOf(const std::vector<Nanos>& times,
                const std::vector<Nanos>& latencies) {
  // Mean over completed requests only (latency >= 0 marks completion).
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (latencies[i] >= 0) {
      sum += ToMillis(times[i]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

std::string QuantilesJson(const WhatIfQuantiles& q) {
  return JsonObject()
      .Set("p50_ms", q.p50_ms)
      .Set("p95_ms", q.p95_ms)
      .Set("p99_ms", q.p99_ms)
      .Set("mean_ms", q.mean_ms)
      .Set("max_ms", q.max_ms)
      .Render();
}

// Shared aggregation core: everything a report needs is the process list,
// the request metadata, and a way to run one replay. BuildWhatIfReport feeds
// it the in-memory engine; BuildWhatIfReportWindowed the windowed one — so a
// given journal yields byte-identical reports either way by construction.
WhatIfReport BuildWhatIfReportFrom(
    const std::vector<std::string>& process_names,
    const std::vector<CpRequest>& requests,
    const std::function<WhatIfReplay(const WhatIfExperiment&)>& replay,
    const std::vector<WhatIfExperiment>& experiments) {
  WhatIfReport report;
  report.processes = process_names;

  // Recorded latencies, indexed by request id (-1 for incomplete requests —
  // the same convention ReplayWhatIf uses).
  std::vector<Nanos> recorded(requests.size(), -1);
  for (const CpRequest& r : requests) {
    if (r.completion >= 0) {
      recorded[Idx(r.id)] = r.completion - r.arrival;
      ++report.requests;
    } else {
      ++report.skipped_requests;
    }
  }
  report.baseline = QuantilesOf(recorded);

  // Identity self-check: the replay must land every completed request on its
  // recorded latency before its perturbed predictions mean anything.
  WhatIfExperiment identity;
  identity.name = "baseline";
  const WhatIfReplay base = replay(identity);
  report.baseline_matches_journal = report.requests > 0;
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    if (recorded[i] >= 0 && base.latency[i] != recorded[i]) {
      report.baseline_matches_journal = false;
    }
  }

  for (const WhatIfExperiment& exp : experiments) {
    const WhatIfReplay predicted = replay(exp);
    WhatIfOutcome outcome;
    outcome.experiment = exp;
    outcome.predicted = QuantilesOf(predicted.latency);

    std::vector<std::vector<Nanos>> by_process_base(report.processes.size());
    std::vector<std::vector<Nanos>> by_process_pred(report.processes.size());
    for (const CpRequest& r : requests) {
      if (r.completion < 0) {
        continue;
      }
      WhatIfPerRequest row;
      row.request = r.id;
      row.process = r.process;
      row.cold = r.cold;
      row.baseline_ns = recorded[Idx(r.id)];
      row.predicted_ns = predicted.latency[Idx(r.id)];
      row.delta_ns = row.predicted_ns - row.baseline_ns;
      outcome.per_request.push_back(row);
      if (r.process >= 0 && Idx(r.process) < by_process_base.size()) {
        by_process_base[Idx(r.process)].push_back(row.baseline_ns);
        by_process_pred[Idx(r.process)].push_back(row.predicted_ns);
      }
    }
    for (std::size_t p = 0; p < report.processes.size(); ++p) {
      if (by_process_base[p].empty()) {
        continue;
      }
      WhatIfProcessOutcome po;
      po.process = static_cast<int>(p);
      po.name = report.processes[p];
      po.requests = static_cast<int>(by_process_base[p].size());
      po.baseline = QuantilesOf(by_process_base[p]);
      po.predicted = QuantilesOf(by_process_pred[p]);
      outcome.processes.push_back(std::move(po));
    }
    report.outcomes.push_back(std::move(outcome));
  }

  // Sensitivity: nudge each knob by +1% and measure what the tail gives
  // back. Leverage divides the p99 shift by the measured per-request time
  // actually shaved off the knob's work, yielding an ns-per-ns exchange rate.
  struct Knob {
    const char* name;
    double WhatIfExperiment::* scale;
    const std::vector<Nanos> WhatIfReplay::* time;
  };
  constexpr Knob kKnobs[] = {
      {"pcie", &WhatIfExperiment::pcie_scale, &WhatIfReplay::pcie_time},
      {"nvlink", &WhatIfExperiment::nvlink_scale, &WhatIfReplay::nvlink_time},
      {"exec", &WhatIfExperiment::exec_scale, &WhatIfReplay::exec_time},
  };
  for (const Knob& knob : kKnobs) {
    WhatIfExperiment nudged;
    nudged.*(knob.scale) = 1.01;
    nudged.name = std::string(knob.name) + "=1.01";
    const WhatIfReplay perturbed = replay(nudged);
    const WhatIfQuantiles q = QuantilesOf(perturbed.latency);
    WhatIfSensitivity s;
    s.knob = knob.name;
    s.delta_p50_ms = report.baseline.p50_ms - q.p50_ms;
    s.delta_p95_ms = report.baseline.p95_ms - q.p95_ms;
    s.delta_p99_ms = report.baseline.p99_ms - q.p99_ms;
    s.knob_time_mean_ms = MeanMsOf(base.*(knob.time), base.latency);
    const double saved_ms = MeanMsOf(base.*(knob.time), base.latency) -
                            MeanMsOf(perturbed.*(knob.time), perturbed.latency);
    s.leverage_p99 = saved_ms > 0 ? s.delta_p99_ms / saved_ms : 0.0;
    report.sensitivity.push_back(std::move(s));
  }
  std::stable_sort(report.sensitivity.begin(), report.sensitivity.end(),
                   [](const WhatIfSensitivity& a, const WhatIfSensitivity& b) {
                     return a.delta_p99_ms > b.delta_p99_ms;
                   });

  return report;
}

}  // namespace

WhatIfReport BuildWhatIfReport(
    const CausalGraph& graph,
    const std::vector<WhatIfExperiment>& experiments) {
  return BuildWhatIfReportFrom(
      graph.processes(), graph.requests(),
      [&graph](const WhatIfExperiment& e) { return ReplayWhatIf(graph, e); },
      experiments);
}

WhatIfReport BuildWhatIfReportWindowed(
    WindowedJournal& journal,
    const std::vector<WhatIfExperiment>& experiments) {
  return BuildWhatIfReportFrom(
      journal.processes(), journal.requests(),
      [&journal](const WhatIfExperiment& e) { return journal.Replay(e); },
      experiments);
}

void PrintWhatIfReport(const WhatIfReport& report, std::ostream& os) {
  os << "== what-if report ==\n";
  os << "requests: " << report.requests;
  if (report.skipped_requests > 0) {
    os << " (+" << report.skipped_requests << " incomplete, skipped)";
  }
  os << " across " << report.processes.size()
     << " process(es); baseline replay matches journal: "
     << (report.baseline_matches_journal ? "yes" : "NO") << "\n";
  if (report.requests == 0) {
    os << "(no completed requests in journal)\n";
    return;
  }
  os << "baseline latency (ms): p50 " << Table::Num(report.baseline.p50_ms)
     << "  p95 " << Table::Num(report.baseline.p95_ms) << "  p99 "
     << Table::Num(report.baseline.p99_ms) << "  mean "
     << Table::Num(report.baseline.mean_ms) << "  max "
     << Table::Num(report.baseline.max_ms) << "\n";

  if (!report.outcomes.empty()) {
    os << "\n-- virtual experiments (latency ms) --\n";
    Table table({"experiment", "p50", "p95", "p99", "mean", "max", "d_p99"});
    for (const WhatIfOutcome& o : report.outcomes) {
      table.AddRow({o.experiment.name, Table::Num(o.predicted.p50_ms),
                    Table::Num(o.predicted.p95_ms),
                    Table::Num(o.predicted.p99_ms),
                    Table::Num(o.predicted.mean_ms),
                    Table::Num(o.predicted.max_ms),
                    Table::Num(o.predicted.p99_ms - report.baseline.p99_ms)});
    }
    table.Print(os);
  }

  os << "\n-- knob sensitivity (per +1% hardware speed) --\n";
  Table table({"knob", "d_p50_ms", "d_p95_ms", "d_p99_ms", "knob_ms",
               "p99 ns/ns"});
  for (const WhatIfSensitivity& s : report.sensitivity) {
    table.AddRow({s.knob, Table::Num(s.delta_p50_ms, 4),
                  Table::Num(s.delta_p95_ms, 4), Table::Num(s.delta_p99_ms, 4),
                  Table::Num(s.knob_time_mean_ms),
                  Table::Num(s.leverage_p99)});
  }
  table.Print(os);
}

std::string WhatIfReportJson(const WhatIfReport& report) {
  JsonArray processes;
  for (const std::string& name : report.processes) {
    processes.Add(name);
  }

  JsonArray experiments;
  for (const WhatIfOutcome& o : report.outcomes) {
    JsonArray per_process;
    for (const WhatIfProcessOutcome& po : o.processes) {
      per_process.AddRaw(JsonObject()
                             .Set("process", po.process)
                             .Set("name", po.name)
                             .Set("requests", po.requests)
                             .SetRaw("baseline", QuantilesJson(po.baseline))
                             .SetRaw("predicted", QuantilesJson(po.predicted))
                             .Render());
    }
    JsonArray per_request;
    for (const WhatIfPerRequest& row : o.per_request) {
      per_request.AddRaw(
          JsonObject()
              .Set("request", row.request)
              .Set("process", row.process)
              .Set("cold", row.cold)
              .Set("baseline_ns", static_cast<std::int64_t>(row.baseline_ns))
              .Set("predicted_ns", static_cast<std::int64_t>(row.predicted_ns))
              .Set("delta_ns", static_cast<std::int64_t>(row.delta_ns))
              .Render());
    }
    experiments.AddRaw(
        JsonObject()
            .Set("name", o.experiment.name)
            .Set("pcie_scale", o.experiment.pcie_scale)
            .Set("nvlink_scale", o.experiment.nvlink_scale)
            .Set("exec_scale", o.experiment.exec_scale)
            .Set("zero_contention", o.experiment.zero_contention)
            .Set("remove_evictions", o.experiment.remove_evictions)
            .SetRaw("predicted", QuantilesJson(o.predicted))
            .SetRaw("delta",
                    JsonObject()
                        .Set("p50_ms",
                             o.predicted.p50_ms - report.baseline.p50_ms)
                        .Set("p95_ms",
                             o.predicted.p95_ms - report.baseline.p95_ms)
                        .Set("p99_ms",
                             o.predicted.p99_ms - report.baseline.p99_ms)
                        .Set("mean_ms",
                             o.predicted.mean_ms - report.baseline.mean_ms)
                        .Set("max_ms",
                             o.predicted.max_ms - report.baseline.max_ms)
                        .Render())
            .SetRaw("processes", per_process.Render())
            .SetRaw("per_request", per_request.Render())
            .Render());
  }

  JsonArray sensitivity;
  for (const WhatIfSensitivity& s : report.sensitivity) {
    sensitivity.AddRaw(JsonObject()
                           .Set("knob", s.knob)
                           .Set("delta_p50_ms", s.delta_p50_ms)
                           .Set("delta_p95_ms", s.delta_p95_ms)
                           .Set("delta_p99_ms", s.delta_p99_ms)
                           .Set("knob_time_mean_ms", s.knob_time_mean_ms)
                           .Set("p99_leverage", s.leverage_p99)
                           .Render());
  }

  JsonObject body;
  body.Set("requests", report.requests)
      .Set("skipped_requests", report.skipped_requests)
      .Set("baseline_matches_journal", report.baseline_matches_journal)
      .SetRaw("baseline", QuantilesJson(report.baseline))
      .SetRaw("processes", processes.Render())
      .SetRaw("experiments", experiments.Render())
      .SetRaw("sensitivity", sensitivity.Render());

  JsonObject doc;
  doc.SetRaw("whatif_report", body.Render());
  return doc.Render();
}

}  // namespace deepplan
