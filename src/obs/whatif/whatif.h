// What-if replay engine: virtual hardware-speedup experiments over a causal
// journal. Takes the happens-before DAG a run recorded (CausalGraph) and
// re-schedules it forward under perturbed hardware — PCIe/NVLink links k
// times faster, execution k times faster, contention-free links, evictions
// removed — predicting each request's latency on the virtual hardware
// without re-running the workload.
//
// Replay model (documented with its error model in DESIGN.md §11):
//   * Data dependencies are the journal's edges: a node starts when all its
//     predecessors end (and its request has been dispatched).
//   * The per-GPU FIFO dispatch discipline is re-derived, not copied:
//     requests sharing one (process, GPU) serialize in request-id order, each
//     dispatching at max(its arrival, predecessor's replayed completion) —
//     exactly the server's gpu_busy rule, so queueing shrinks when upstream
//     work speeds up.
//   * Transfer nodes are re-timed through a real max-min fair Fabric rebuilt
//     from the per-link hops recorded on each node (link name + capacity,
//     scaled by the experiment), so contention is re-derived from the
//     replayed per-link overlap rather than frozen at recorded values. The
//     per-transfer latency tail is recovered as solo - ceil(bytes/min_cap).
//   * Exec nodes keep their recorded duration, scaled by 1/exec_scale; the
//     recorded DHA streaming share additionally scales by 1/pcie_scale
//     (direct-host-access reads ride the same link the experiment speeds up).
//   * Evict nodes keep their duration, or drop to zero under
//     remove_evictions.
//
// With the identity experiment the replay reproduces every recorded latency
// bit-exactly (asserted by tests/whatif_test.cc), which is what licenses the
// perturbed predictions; the validation harness further re-simulates each
// experiment on correspondingly modified hardware and bounds the error.
// Windowed mode: WindowedJournal replays a *binary* journal
// (src/obs/journal_stream.h) chunk-by-chunk. A first pass builds an
// O(requests) metadata index (arrival/completion/terminal resource + the
// owning chunk's file offset); during replay, a request's nodes and edges are
// loaded lazily when its chunk is first touched and freed as soon as the
// request has fully replayed, so resident node/edge state is bounded by the
// replay's in-flight window — not journal length — while the event sequence,
// and therefore every prediction, stays bit-identical to the in-memory
// engine (enforced by tests/journal_test.cc differentials).
#ifndef SRC_OBS_WHATIF_WHATIF_H_
#define SRC_OBS_WHATIF_WHATIF_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/causal_graph.h"
#include "src/util/time.h"

namespace deepplan {

// One virtual experiment. Scales are hardware *speed* factors (>1 = faster):
// pcie_scale multiplies every PCIe lane and switch-uplink capacity (and
// divides exec nodes' DHA streaming share), nvlink_scale multiplies NVLink
// capacities, exec_scale divides exec-node durations. zero_contention runs
// every transfer at its (scaled) solo speed; remove_evictions zeroes LRU
// teardown time.
struct WhatIfExperiment {
  std::string name;  // canonical spec string, e.g. "pcie=2,nocontention"
  double pcie_scale = 1.0;
  double nvlink_scale = 1.0;
  double exec_scale = 1.0;
  bool zero_contention = false;
  bool remove_evictions = false;

  bool IsIdentity() const {
    return pcie_scale == 1.0 && nvlink_scale == 1.0 && exec_scale == 1.0 &&
           !zero_contention && !remove_evictions;
  }
};

// Parses a comma-separated experiment spec: "pcie=K", "nvlink=K", "exec=K"
// (K > 0), "nocontention", "noevict", or "baseline" (identity), in any
// combination — e.g. "pcie=2,nocontention". Returns false and sets `error`
// on malformed input. The parsed experiment's name is the canonical form
// (fixed clause order, duplicate clauses collapsed).
bool ParseWhatIfExperiment(const std::string& spec, WhatIfExperiment* out,
                           std::string* error);

// The default sweep run when no experiments are given: each knob doubled,
// the two structural experiments, and one combination.
std::vector<WhatIfExperiment> DefaultWhatIfExperiments();

// Replayed timings, indexed by journal request id. Requests that never
// completed in the journal are skipped and keep latency -1.
struct WhatIfReplay {
  std::vector<Nanos> latency;      // predicted completion - arrival; -1 = n/a
  // Per-request time spent on nodes each knob governs, under this experiment
  // (transfer durations as replayed; exec includes the DHA share; the DHA
  // share also counts toward pcie). Feeds the sensitivity leverage numbers.
  std::vector<Nanos> pcie_time;
  std::vector<Nanos> nvlink_time;
  std::vector<Nanos> exec_time;
};

WhatIfReplay ReplayWhatIf(const CausalGraph& graph, const WhatIfExperiment& exp);

// Bounded-memory replay over a binary journal file. Open() makes one
// validating sequential pass to index request metadata and chunk offsets;
// each Replay() then streams node/edge state in and out per chunk window.
// One WindowedJournal can run any number of experiments.
class WindowedJournal {
 public:
  WindowedJournal();
  ~WindowedJournal();
  WindowedJournal(const WindowedJournal&) = delete;
  WindowedJournal& operator=(const WindowedJournal&) = delete;

  // False (with `error` set) on unreadable, corrupt, or footer-less
  // journals, and on journals whose request ids are not dense.
  bool Open(const std::string& path, std::string* error);

  // Metadata index from the sequential pass (valid after Open succeeds).
  const std::vector<std::string>& processes() const;
  const std::vector<CpRequest>& requests() const;

  // Identical output to ReplayWhatIf() on the equivalent in-memory graph.
  WhatIfReplay Replay(const WhatIfExperiment& exp);

  // High-water mark of simultaneously resident request windows across all
  // Replay() calls so far — the bounded-memory observable tests pin.
  std::size_t max_resident_requests() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace deepplan

#endif  // SRC_OBS_WHATIF_WHATIF_H_
