// What-if replay engine: virtual hardware-speedup experiments over a causal
// journal. Takes the happens-before DAG a run recorded (CausalGraph) and
// re-schedules it forward under perturbed hardware — PCIe/NVLink links k
// times faster, execution k times faster, contention-free links, evictions
// removed — predicting each request's latency on the virtual hardware
// without re-running the workload.
//
// Replay model (documented with its error model in DESIGN.md §11):
//   * Data dependencies are the journal's edges: a node starts when all its
//     predecessors end (and its request has been dispatched).
//   * The per-GPU FIFO dispatch discipline is re-derived, not copied:
//     requests sharing one (process, GPU) serialize in request-id order, each
//     dispatching at max(its arrival, predecessor's replayed completion) —
//     exactly the server's gpu_busy rule, so queueing shrinks when upstream
//     work speeds up.
//   * Transfer nodes are re-timed through a real max-min fair Fabric rebuilt
//     from the per-link hops recorded on each node (link name + capacity,
//     scaled by the experiment), so contention is re-derived from the
//     replayed per-link overlap rather than frozen at recorded values. The
//     per-transfer latency tail is recovered as solo - ceil(bytes/min_cap).
//   * Exec nodes keep their recorded duration, scaled by 1/exec_scale; the
//     recorded DHA streaming share additionally scales by 1/pcie_scale
//     (direct-host-access reads ride the same link the experiment speeds up).
//   * Evict nodes keep their duration, or drop to zero under
//     remove_evictions.
//
// With the identity experiment the replay reproduces every recorded latency
// bit-exactly (asserted by tests/whatif_test.cc), which is what licenses the
// perturbed predictions; the validation harness further re-simulates each
// experiment on correspondingly modified hardware and bounds the error.
#ifndef SRC_OBS_WHATIF_WHATIF_H_
#define SRC_OBS_WHATIF_WHATIF_H_

#include <string>
#include <vector>

#include "src/obs/causal_graph.h"
#include "src/util/time.h"

namespace deepplan {

// One virtual experiment. Scales are hardware *speed* factors (>1 = faster):
// pcie_scale multiplies every PCIe lane and switch-uplink capacity (and
// divides exec nodes' DHA streaming share), nvlink_scale multiplies NVLink
// capacities, exec_scale divides exec-node durations. zero_contention runs
// every transfer at its (scaled) solo speed; remove_evictions zeroes LRU
// teardown time.
struct WhatIfExperiment {
  std::string name;  // canonical spec string, e.g. "pcie=2,nocontention"
  double pcie_scale = 1.0;
  double nvlink_scale = 1.0;
  double exec_scale = 1.0;
  bool zero_contention = false;
  bool remove_evictions = false;

  bool IsIdentity() const {
    return pcie_scale == 1.0 && nvlink_scale == 1.0 && exec_scale == 1.0 &&
           !zero_contention && !remove_evictions;
  }
};

// Parses a comma-separated experiment spec: "pcie=K", "nvlink=K", "exec=K"
// (K > 0), "nocontention", "noevict", or "baseline" (identity), in any
// combination — e.g. "pcie=2,nocontention". Returns false and sets `error`
// on malformed input. The parsed experiment's name is the canonical form
// (fixed clause order, duplicate clauses collapsed).
bool ParseWhatIfExperiment(const std::string& spec, WhatIfExperiment* out,
                           std::string* error);

// The default sweep run when no experiments are given: each knob doubled,
// the two structural experiments, and one combination.
std::vector<WhatIfExperiment> DefaultWhatIfExperiments();

// Replayed timings, indexed by journal request id. Requests that never
// completed in the journal are skipped and keep latency -1.
struct WhatIfReplay {
  std::vector<Nanos> latency;      // predicted completion - arrival; -1 = n/a
  // Per-request time spent on nodes each knob governs, under this experiment
  // (transfer durations as replayed; exec includes the DHA share; the DHA
  // share also counts toward pcie). Feeds the sensitivity leverage numbers.
  std::vector<Nanos> pcie_time;
  std::vector<Nanos> nvlink_time;
  std::vector<Nanos> exec_time;
};

WhatIfReplay ReplayWhatIf(const CausalGraph& graph, const WhatIfExperiment& exp);

}  // namespace deepplan

#endif  // SRC_OBS_WHATIF_WHATIF_H_
