#include "src/obs/whatif/whatif.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/util/index.h"
#include "src/util/json.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {

// NVLink links are named "nvlink/..."; everything else ("pcie/...",
// "uplink/...") is PCIe infrastructure and follows the PCIe knob.
bool IsNvlinkName(const std::string& link) {
  return link.rfind("nvlink", 0) == 0;
}

// ceil(bytes / rate) in nanoseconds — the same rounding Fabric::SoloDuration
// and its completion scheduler apply, so identity replay lands on the exact
// recorded instants.
Nanos CeilTransferBody(std::int64_t bytes, double rate) {
  if (bytes <= 0) {
    return 0;
  }
  DP_CHECK(rate > 0);
  const double secs = static_cast<double>(bytes) / rate;
  return static_cast<Nanos>(std::ceil(secs * kNanosPerSecond));
}

std::string CanonicalName(const WhatIfExperiment& e) {
  std::string out;
  const auto add = [&out](const std::string& clause) {
    if (!out.empty()) {
      out += ',';
    }
    out += clause;
  };
  if (e.pcie_scale != 1.0) {
    add("pcie=" + Json::Num(e.pcie_scale));
  }
  if (e.nvlink_scale != 1.0) {
    add("nvlink=" + Json::Num(e.nvlink_scale));
  }
  if (e.exec_scale != 1.0) {
    add("exec=" + Json::Num(e.exec_scale));
  }
  if (e.zero_contention) {
    add("nocontention");
  }
  if (e.remove_evictions) {
    add("noevict");
  }
  return out.empty() ? "baseline" : out;
}

// Event-driven forward re-scheduling of the journal DAG. Every non-arrival
// node waits for (a) all of its happens-before predecessors and (b) its
// request's dispatch ("release"). Releases re-derive the server's per-GPU
// FIFO rule: requests sharing a (process, terminal resource) domain serialize
// in request-id order, each releasing at max(its arrival, the previous
// domain request's replayed completion). Transfers run through a per-process
// fair-share Fabric rebuilt from the recorded hops at scaled capacities, so
// contention re-emerges from the replayed overlap instead of being copied.
class Replayer {
 public:
  Replayer(const CausalGraph& graph, const WhatIfExperiment& exp)
      : graph_(graph), exp_(exp) {}

  WhatIfReplay Run() {
    const auto& nodes = graph_.nodes();
    const auto& requests = graph_.requests();

    out_.latency.assign(requests.size(), -1);
    out_.pcie_time.assign(requests.size(), 0);
    out_.nvlink_time.assign(requests.size(), 0);
    out_.exec_time.assign(requests.size(), 0);

    succ_.assign(nodes.size(), {});
    pending_.assign(nodes.size(), 0);
    for (const auto& [from, to] : graph_.edges()) {
      succ_[Idx(from)].push_back(to);
      ++pending_[Idx(to)];
    }
    req_nodes_.assign(requests.size(), {});
    for (const auto& n : nodes) {
      if (n.request >= 0 && n.kind != CpKind::kArrival) {
        ++pending_[Idx(n.id)];  // the release token
        req_nodes_[Idx(n.request)].push_back(n.id);
      }
    }

    int num_processes = static_cast<int>(graph_.processes().size());
    for (const auto& r : requests) {
      num_processes = std::max(num_processes, r.process + 1);
    }
    fabrics_.resize(Idx(num_processes));
    links_.resize(Idx(num_processes));

    // Chain completed requests into dispatch domains; requests the journal
    // never completed are skipped entirely (their nodes stay unscheduled).
    next_in_domain_.assign(requests.size(), -1);
    std::map<std::pair<int, std::string>, int> domain_tail;
    for (const auto& r : requests) {
      if (r.completion < 0 || r.terminal_node < 0) {
        continue;
      }
      const auto key =
          std::make_pair(r.process, nodes[Idx(r.terminal_node)].resource);
      const auto it = domain_tail.find(key);
      if (it == domain_tail.end()) {
        const int id = r.id;
        sim_.ScheduleAt(r.arrival, [this, id] { Release(id); });
      } else {
        next_in_domain_[Idx(it->second)] = r.id;
      }
      domain_tail[key] = r.id;
      const CpNodeId arrival_node = r.arrival_node;
      if (arrival_node >= 0) {
        sim_.ScheduleAt(r.arrival,
                        [this, arrival_node] { FinishNode(arrival_node, 0); });
      }
    }

    sim_.Run();

    for (const auto& r : requests) {
      if (r.completion >= 0 && r.terminal_node >= 0) {
        // A stuck replay means the journal's edges are cyclic or reference
        // work from a request that never completed.
        DP_CHECK(out_.latency[Idx(r.id)] >= 0);
      }
    }
    return std::move(out_);
  }

 private:
  Fabric& FabricFor(int process) {
    auto& fabric = fabrics_[Idx(process)];
    if (!fabric) {
      fabric = std::make_unique<Fabric>(&sim_);
    }
    return *fabric;
  }

  double ScaleFor(const std::string& link) const {
    return IsNvlinkName(link) ? exp_.nvlink_scale : exp_.pcie_scale;
  }

  LinkId LinkFor(int process, const CpHop& hop) {
    auto& map = links_[Idx(process)];
    const auto it = map.find(hop.link);
    if (it != map.end()) {
      DP_CHECK(it->second.second == hop.capacity);  // journal self-consistency
      return it->second.first;
    }
    const LinkId id =
        FabricFor(process).AddLink(hop.link, hop.capacity * ScaleFor(hop.link));
    map.emplace(hop.link, std::make_pair(id, hop.capacity));
    return id;
  }

  void Release(int request) {
    for (const CpNodeId n : req_nodes_[Idx(request)]) {
      Arm(n);
    }
  }

  void Arm(CpNodeId node) {
    DP_CHECK(pending_[Idx(node)] > 0);
    if (--pending_[Idx(node)] == 0) {
      StartNode(node);
    }
  }

  // The PCIe-scaled share of an exec node's replayed duration (DHA parameter
  // streaming). The remainder of the node scales only with the exec knob.
  Nanos ScaledDhaShare(const CpNode& n) const {
    const Nanos dha = std::clamp<Nanos>(n.dha_pcie, 0, n.end - n.start);
    return static_cast<Nanos>(static_cast<double>(dha) /
                              (exp_.exec_scale * exp_.pcie_scale));
  }

  void StartNode(CpNodeId id) {
    const CpNode& n = graph_.nodes()[Idx(id)];
    const Nanos recorded = n.end - n.start;
    switch (n.kind) {
      case CpKind::kArrival:
        DP_CHECK(false);  // arrivals are scheduled directly, never armed
        break;
      case CpKind::kEvict:
        FinishAfter(id, exp_.remove_evictions ? 0 : recorded);
        break;
      case CpKind::kExec: {
        const Nanos dha = std::clamp<Nanos>(n.dha_pcie, 0, recorded);
        const auto rest = static_cast<Nanos>(
            static_cast<double>(recorded - dha) / exp_.exec_scale);
        FinishAfter(id, rest + ScaledDhaShare(n));
        break;
      }
      case CpKind::kPcie:
      case CpKind::kNvlink:
        ReplayTransfer(id, n);
        break;
    }
  }

  void ReplayTransfer(CpNodeId id, const CpNode& n) {
    const Nanos recorded = n.end - n.start;
    const double knob =
        n.kind == CpKind::kNvlink ? exp_.nvlink_scale : exp_.pcie_scale;
    if (n.path.empty()) {
      // Journal predates hop recording: no fabric to rebuild, so degrade to
      // scaling the recorded (or, contention-free, the solo) duration.
      const Nanos base =
          exp_.zero_contention && n.solo >= 0 ? n.solo : recorded;
      FinishAfter(id, static_cast<Nanos>(static_cast<double>(base) / knob));
      return;
    }
    double min_cap = std::numeric_limits<double>::infinity();
    double min_scaled = std::numeric_limits<double>::infinity();
    for (const CpHop& hop : n.path) {
      min_cap = std::min(min_cap, hop.capacity);
      min_scaled = std::min(min_scaled, hop.capacity * ScaleFor(hop.link));
    }
    // The recorded solo is body-at-min-capacity + latency tail, so the
    // bandwidth-independent tail (DMA setup, completion signalling) falls out
    // exactly.
    const Nanos latency =
        n.solo >= 0
            ? std::max<Nanos>(0, n.solo - CeilTransferBody(n.bytes, min_cap))
            : 0;
    if (exp_.zero_contention) {
      FinishAfter(id, CeilTransferBody(n.bytes, min_scaled) + latency);
      return;
    }
    const int process = n.request >= 0
                            ? graph_.requests()[Idx(n.request)].process
                            : 0;
    std::vector<LinkId> path;
    path.reserve(n.path.size());
    for (const CpHop& hop : n.path) {
      path.push_back(LinkFor(process, hop));
    }
    FabricFor(process).Start(
        std::move(path), n.bytes, latency,
        [this, id](Nanos elapsed) { FinishNode(id, elapsed); });
  }

  void FinishAfter(CpNodeId id, Nanos duration) {
    DP_CHECK(duration >= 0);
    sim_.ScheduleAfter(duration,
                       [this, id, duration] { FinishNode(id, duration); });
  }

  void FinishNode(CpNodeId id, Nanos elapsed) {
    const CpNode& n = graph_.nodes()[Idx(id)];
    const Nanos now = sim_.now();
    if (n.request >= 0) {
      switch (n.kind) {
        case CpKind::kPcie:
          out_.pcie_time[Idx(n.request)] += elapsed;
          break;
        case CpKind::kNvlink:
          out_.nvlink_time[Idx(n.request)] += elapsed;
          break;
        case CpKind::kExec:
          out_.exec_time[Idx(n.request)] += elapsed;
          // DHA streaming rides the PCIe links, so its share counts toward
          // the PCIe knob's leverage too.
          out_.pcie_time[Idx(n.request)] += ScaledDhaShare(n);
          break;
        case CpKind::kArrival:
        case CpKind::kEvict:
          break;
      }
    }
    for (const CpNodeId s : succ_[Idx(id)]) {
      Arm(s);
    }
    if (n.request >= 0) {
      const CpRequest& r = graph_.requests()[Idx(n.request)];
      if (r.terminal_node == id && r.completion >= 0) {
        out_.latency[Idx(r.id)] = now - r.arrival;
        const int next = next_in_domain_[Idx(r.id)];
        if (next >= 0) {
          const Nanos arrival = graph_.requests()[Idx(next)].arrival;
          if (arrival <= now) {
            Release(next);
          } else {
            sim_.ScheduleAt(arrival, [this, next] { Release(next); });
          }
        }
      }
    }
  }

  const CausalGraph& graph_;
  const WhatIfExperiment& exp_;
  Simulator sim_;
  WhatIfReplay out_;
  std::vector<std::vector<CpNodeId>> succ_;
  std::vector<int> pending_;
  std::vector<std::vector<CpNodeId>> req_nodes_;
  std::vector<int> next_in_domain_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  // Per process: link name -> (link id, recorded unscaled capacity).
  std::vector<std::unordered_map<std::string, std::pair<LinkId, double>>>
      links_;
};

}  // namespace

bool ParseWhatIfExperiment(const std::string& spec, WhatIfExperiment* out,
                           std::string* error) {
  DP_CHECK(out != nullptr && error != nullptr);
  WhatIfExperiment exp;
  if (spec.empty()) {
    *error = "empty what-if spec";
    return false;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok = spec.substr(
        start, (comma == std::string::npos ? spec.size() : comma) - start);
    if (tok.empty()) {
      *error = "empty clause in what-if spec '" + spec + "'";
      return false;
    }
    if (tok == "baseline") {
      // identity: no clause
    } else if (tok == "nocontention") {
      exp.zero_contention = true;
    } else if (tok == "noevict") {
      exp.remove_evictions = true;
    } else {
      const std::size_t eq = tok.find('=');
      const std::string key =
          eq == std::string::npos ? tok : tok.substr(0, eq);
      if (eq == std::string::npos ||
          (key != "pcie" && key != "nvlink" && key != "exec")) {
        *error = "unknown what-if clause '" + tok +
                 "' (want pcie=K, nvlink=K, exec=K, nocontention, noevict, "
                 "or baseline)";
        return false;
      }
      const std::string val = tok.substr(eq + 1);
      char* endp = nullptr;
      const double k = std::strtod(val.c_str(), &endp);
      if (val.empty() || endp != val.c_str() + val.size() ||
          !std::isfinite(k) || k <= 0) {
        *error = "bad scale in what-if clause '" + tok +
                 "' (want a positive number)";
        return false;
      }
      if (key == "pcie") {
        exp.pcie_scale = k;
      } else if (key == "nvlink") {
        exp.nvlink_scale = k;
      } else {
        exp.exec_scale = k;
      }
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  exp.name = CanonicalName(exp);
  *out = std::move(exp);
  return true;
}

std::vector<WhatIfExperiment> DefaultWhatIfExperiments() {
  static const char* const kSpecs[] = {"pcie=2",       "nvlink=2",
                                       "exec=2",       "nocontention",
                                       "noevict",      "pcie=2,nvlink=2"};
  std::vector<WhatIfExperiment> out;
  for (const char* spec : kSpecs) {
    WhatIfExperiment exp;
    std::string err;
    const bool ok = ParseWhatIfExperiment(spec, &exp, &err);
    DP_CHECK(ok);
    out.push_back(std::move(exp));
  }
  return out;
}

WhatIfReplay ReplayWhatIf(const CausalGraph& graph,
                          const WhatIfExperiment& exp) {
  return Replayer(graph, exp).Run();
}

}  // namespace deepplan
