#include "src/obs/whatif/whatif.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/journal_stream.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/util/index.h"
#include "src/util/json.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {

// NVLink links are named "nvlink/..."; everything else ("pcie/...",
// "uplink/...") is PCIe infrastructure and follows the PCIe knob.
bool IsNvlinkName(const std::string& link) {
  return link.rfind("nvlink", 0) == 0;
}

// ceil(bytes / rate) in nanoseconds — the same rounding Fabric::SoloDuration
// and its completion scheduler apply, so identity replay lands on the exact
// recorded instants.
Nanos CeilTransferBody(std::int64_t bytes, double rate) {
  if (bytes <= 0) {
    return 0;
  }
  DP_CHECK(rate > 0);
  const double secs = static_cast<double>(bytes) / rate;
  return static_cast<Nanos>(std::ceil(secs * kNanosPerSecond));
}

std::string CanonicalName(const WhatIfExperiment& e) {
  std::string out;
  const auto add = [&out](const std::string& clause) {
    if (!out.empty()) {
      out += ',';
    }
    out += clause;
  };
  if (e.pcie_scale != 1.0) {
    add("pcie=" + Json::Num(e.pcie_scale));
  }
  if (e.nvlink_scale != 1.0) {
    add("nvlink=" + Json::Num(e.nvlink_scale));
  }
  if (e.exec_scale != 1.0) {
    add("exec=" + Json::Num(e.exec_scale));
  }
  if (e.zero_contention) {
    add("nocontention");
  }
  if (e.remove_evictions) {
    add("noevict");
  }
  return out.empty() ? "baseline" : out;
}

// The data plane the Replayer schedules against. Two implementations: the
// whole graph pinned in memory (InMemorySource), or a chunked binary journal
// whose per-request node/edge state is loaded lazily and freed as requests
// finish replaying (WindowedSource). The Replayer is the only component that
// talks to the Simulator, so as long as a source serves identical data, the
// event sequence — and every prediction — is identical too.
class ReplaySource {
 public:
  virtual ~ReplaySource() = default;

  virtual std::size_t num_requests() const = 0;
  virtual int num_processes() const = 0;
  // Request metadata; always available (windowed sources index it up front).
  virtual const CpRequest& request(int id) const = 0;
  // Resource of the request's terminal node (dispatch-domain key). Only
  // called for completed requests with a terminal.
  virtual const std::string& terminal_resource(int id) const = 0;
  // The request's non-arrival nodes in id order. Makes the request's window
  // resident; the returned reference is valid until the request finishes.
  virtual const std::vector<CpNodeId>& request_nodes(int id) = 0;
  // Hook before the arrival node of `id` is finished at its recorded time —
  // windowed sources page the request in here.
  virtual void BeforeArrival(int id) = 0;
  // Node-addressed state; valid only while the owning request is resident.
  virtual const CpNode& node(CpNodeId id) = 0;
  virtual const std::vector<CpNodeId>& successors(CpNodeId id) = 0;
  virtual int& pending(CpNodeId id) = 0;
  // Retirement hooks, fired by the Replayer in this order for a terminal
  // node: OnRequestDone(request), then OnNodeFinished(node). After
  // OnNodeFinished(n) no state of node n is touched again.
  virtual void OnNodeFinished(CpNodeId id) = 0;
  virtual void OnRequestDone(int id) = 0;
};

// ReplaySource over a fully materialized CausalGraph (the original engine).
class InMemorySource : public ReplaySource {
 public:
  explicit InMemorySource(const CausalGraph& graph) : graph_(graph) {
    const auto& nodes = graph_.nodes();
    succ_.assign(nodes.size(), {});
    pending_.assign(nodes.size(), 0);
    for (const auto& [from, to] : graph_.edges()) {
      succ_[Idx(from)].push_back(to);
      ++pending_[Idx(to)];
    }
    req_nodes_.assign(graph_.requests().size(), {});
    for (const auto& n : nodes) {
      if (n.request >= 0 && n.kind != CpKind::kArrival) {
        ++pending_[Idx(n.id)];  // the release token
        req_nodes_[Idx(n.request)].push_back(n.id);
      }
    }
  }

  std::size_t num_requests() const override {
    return graph_.requests().size();
  }
  int num_processes() const override {
    return static_cast<int>(graph_.processes().size());
  }
  const CpRequest& request(int id) const override {
    return graph_.requests()[Idx(id)];
  }
  const std::string& terminal_resource(int id) const override {
    return graph_.nodes()[Idx(request(id).terminal_node)].resource;
  }
  const std::vector<CpNodeId>& request_nodes(int id) override {
    return req_nodes_[Idx(id)];
  }
  void BeforeArrival(int) override {}
  const CpNode& node(CpNodeId id) override { return graph_.nodes()[Idx(id)]; }
  const std::vector<CpNodeId>& successors(CpNodeId id) override {
    return succ_[Idx(id)];
  }
  int& pending(CpNodeId id) override { return pending_[Idx(id)]; }
  void OnNodeFinished(CpNodeId) override {}
  void OnRequestDone(int) override {}

 private:
  const CausalGraph& graph_;
  std::vector<std::vector<CpNodeId>> succ_;
  std::vector<int> pending_;
  std::vector<std::vector<CpNodeId>> req_nodes_;
};

// Event-driven forward re-scheduling of the journal DAG. Every non-arrival
// node waits for (a) all of its happens-before predecessors and (b) its
// request's dispatch ("release"). Releases re-derive the server's per-GPU
// FIFO rule: requests sharing a (process, terminal resource) domain serialize
// in request-id order, each releasing at max(its arrival, the previous
// domain request's replayed completion). Transfers run through a per-process
// fair-share Fabric rebuilt from the recorded hops at scaled capacities, so
// contention re-emerges from the replayed overlap instead of being copied.
class Replayer {
 public:
  Replayer(ReplaySource& src, const WhatIfExperiment& exp)
      : src_(src), exp_(exp) {}

  WhatIfReplay Run() {
    const std::size_t num_requests = src_.num_requests();
    out_.latency.assign(num_requests, -1);
    out_.pcie_time.assign(num_requests, 0);
    out_.nvlink_time.assign(num_requests, 0);
    out_.exec_time.assign(num_requests, 0);

    int num_processes = src_.num_processes();
    for (std::size_t id = 0; id < num_requests; ++id) {
      num_processes =
          std::max(num_processes, src_.request(static_cast<int>(id)).process + 1);
    }
    fabrics_.resize(Idx(num_processes));
    links_.resize(Idx(num_processes));

    // Chain completed requests into dispatch domains; requests the journal
    // never completed are skipped entirely (their nodes stay unscheduled).
    next_in_domain_.assign(num_requests, -1);
    std::map<std::pair<int, std::string>, int> domain_tail;
    for (std::size_t i = 0; i < num_requests; ++i) {
      const CpRequest& r = src_.request(static_cast<int>(i));
      if (r.completion < 0 || r.terminal_node < 0) {
        continue;
      }
      const auto key = std::make_pair(r.process, src_.terminal_resource(r.id));
      const auto it = domain_tail.find(key);
      if (it == domain_tail.end()) {
        const int id = r.id;
        sim_.ScheduleAt(r.arrival, [this, id] { Release(id); });
      } else {
        next_in_domain_[Idx(it->second)] = r.id;
      }
      domain_tail[key] = r.id;
      const CpNodeId arrival_node = r.arrival_node;
      if (arrival_node >= 0) {
        const int rid = r.id;
        sim_.ScheduleAt(r.arrival, [this, rid, arrival_node] {
          src_.BeforeArrival(rid);
          FinishNode(arrival_node, 0);
        });
      }
    }

    sim_.Run();

    for (std::size_t i = 0; i < num_requests; ++i) {
      const CpRequest& r = src_.request(static_cast<int>(i));
      if (r.completion >= 0 && r.terminal_node >= 0) {
        // A stuck replay means the journal's edges are cyclic or reference
        // work from a request that never completed.
        DP_CHECK(out_.latency[Idx(r.id)] >= 0);
      }
    }
    return std::move(out_);
  }

 private:
  Fabric& FabricFor(int process) {
    auto& fabric = fabrics_[Idx(process)];
    if (!fabric) {
      fabric = std::make_unique<Fabric>(&sim_);
    }
    return *fabric;
  }

  double ScaleFor(const std::string& link) const {
    return IsNvlinkName(link) ? exp_.nvlink_scale : exp_.pcie_scale;
  }

  LinkId LinkFor(int process, const CpHop& hop) {
    auto& map = links_[Idx(process)];
    const auto it = map.find(hop.link);
    if (it != map.end()) {
      DP_CHECK(it->second.second == hop.capacity);  // journal self-consistency
      return it->second.first;
    }
    const LinkId id =
        FabricFor(process).AddLink(hop.link, hop.capacity * ScaleFor(hop.link));
    map.emplace(hop.link, std::make_pair(id, hop.capacity));
    return id;
  }

  void Release(int request) {
    // request_nodes() pages the request's window in (windowed source); no
    // node of a request is touched before its Release or BeforeArrival.
    for (const CpNodeId n : src_.request_nodes(request)) {
      Arm(n);
    }
  }

  void Arm(CpNodeId node) {
    int& pending = src_.pending(node);
    DP_CHECK(pending > 0);
    if (--pending == 0) {
      StartNode(node);
    }
  }

  // The PCIe-scaled share of an exec node's replayed duration (DHA parameter
  // streaming). The remainder of the node scales only with the exec knob.
  Nanos ScaledDhaShare(const CpNode& n) const {
    const Nanos dha = std::clamp<Nanos>(n.dha_pcie, 0, n.end - n.start);
    return static_cast<Nanos>(static_cast<double>(dha) /
                              (exp_.exec_scale * exp_.pcie_scale));
  }

  void StartNode(CpNodeId id) {
    const CpNode& n = src_.node(id);
    const Nanos recorded = n.end - n.start;
    switch (n.kind) {
      case CpKind::kArrival:
        DP_CHECK(false);  // arrivals are scheduled directly, never armed
        break;
      case CpKind::kEvict:
        FinishAfter(id, exp_.remove_evictions ? 0 : recorded);
        break;
      case CpKind::kExec: {
        const Nanos dha = std::clamp<Nanos>(n.dha_pcie, 0, recorded);
        const auto rest = static_cast<Nanos>(
            static_cast<double>(recorded - dha) / exp_.exec_scale);
        FinishAfter(id, rest + ScaledDhaShare(n));
        break;
      }
      case CpKind::kPcie:
      case CpKind::kNvlink:
        ReplayTransfer(id, n);
        break;
    }
  }

  void ReplayTransfer(CpNodeId id, const CpNode& n) {
    const Nanos recorded = n.end - n.start;
    const double knob =
        n.kind == CpKind::kNvlink ? exp_.nvlink_scale : exp_.pcie_scale;
    if (n.path.empty()) {
      // Journal predates hop recording: no fabric to rebuild, so degrade to
      // scaling the recorded (or, contention-free, the solo) duration.
      const Nanos base =
          exp_.zero_contention && n.solo >= 0 ? n.solo : recorded;
      FinishAfter(id, static_cast<Nanos>(static_cast<double>(base) / knob));
      return;
    }
    double min_cap = std::numeric_limits<double>::infinity();
    double min_scaled = std::numeric_limits<double>::infinity();
    for (const CpHop& hop : n.path) {
      min_cap = std::min(min_cap, hop.capacity);
      min_scaled = std::min(min_scaled, hop.capacity * ScaleFor(hop.link));
    }
    // The recorded solo is body-at-min-capacity + latency tail, so the
    // bandwidth-independent tail (DMA setup, completion signalling) falls out
    // exactly.
    const Nanos latency =
        n.solo >= 0
            ? std::max<Nanos>(0, n.solo - CeilTransferBody(n.bytes, min_cap))
            : 0;
    if (exp_.zero_contention) {
      FinishAfter(id, CeilTransferBody(n.bytes, min_scaled) + latency);
      return;
    }
    const int process = n.request >= 0 ? src_.request(n.request).process : 0;
    std::vector<LinkId> path;
    path.reserve(n.path.size());
    for (const CpHop& hop : n.path) {
      path.push_back(LinkFor(process, hop));
    }
    FabricFor(process).Start(
        std::move(path), n.bytes, latency,
        [this, id](Nanos elapsed) { FinishNode(id, elapsed); });
  }

  void FinishAfter(CpNodeId id, Nanos duration) {
    DP_CHECK(duration >= 0);
    sim_.ScheduleAfter(duration,
                       [this, id, duration] { FinishNode(id, duration); });
  }

  void FinishNode(CpNodeId id, Nanos elapsed) {
    const Nanos now = sim_.now();
    // Capture everything needed from the node up front: once
    // src_.OnNodeFinished(id) runs (last statement), a windowed source may
    // have freed the node's storage.
    const CpNode& n = src_.node(id);
    const int request = n.request;
    const CpKind kind = n.kind;
    if (request >= 0) {
      switch (kind) {
        case CpKind::kPcie:
          out_.pcie_time[Idx(request)] += elapsed;
          break;
        case CpKind::kNvlink:
          out_.nvlink_time[Idx(request)] += elapsed;
          break;
        case CpKind::kExec:
          out_.exec_time[Idx(request)] += elapsed;
          // DHA streaming rides the PCIe links, so its share counts toward
          // the PCIe knob's leverage too.
          out_.pcie_time[Idx(request)] += ScaledDhaShare(n);
          break;
        case CpKind::kArrival:
        case CpKind::kEvict:
          break;
      }
    }
    for (const CpNodeId s : src_.successors(id)) {
      Arm(s);
    }
    if (request >= 0) {
      const CpRequest& r = src_.request(request);
      if (r.terminal_node == id && r.completion >= 0) {
        out_.latency[Idx(r.id)] = now - r.arrival;
        const int next = next_in_domain_[Idx(r.id)];
        if (next >= 0) {
          const Nanos arrival = src_.request(next).arrival;
          if (arrival <= now) {
            Release(next);
          } else {
            sim_.ScheduleAt(arrival, [this, next] { Release(next); });
          }
        }
        src_.OnRequestDone(r.id);
      }
    }
    src_.OnNodeFinished(id);
  }

  ReplaySource& src_;
  const WhatIfExperiment& exp_;
  Simulator sim_;
  WhatIfReplay out_;
  std::vector<int> next_in_domain_;
  std::vector<std::unique_ptr<Fabric>> fabrics_;
  // Per process: link name -> (link id, recorded unscaled capacity).
  std::vector<std::unordered_map<std::string, std::pair<LinkId, double>>>
      links_;
};

}  // namespace

bool ParseWhatIfExperiment(const std::string& spec, WhatIfExperiment* out,
                           std::string* error) {
  DP_CHECK(out != nullptr && error != nullptr);
  WhatIfExperiment exp;
  if (spec.empty()) {
    *error = "empty what-if spec";
    return false;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok = spec.substr(
        start, (comma == std::string::npos ? spec.size() : comma) - start);
    if (tok.empty()) {
      *error = "empty clause in what-if spec '" + spec + "'";
      return false;
    }
    if (tok == "baseline") {
      // identity: no clause
    } else if (tok == "nocontention") {
      exp.zero_contention = true;
    } else if (tok == "noevict") {
      exp.remove_evictions = true;
    } else {
      const std::size_t eq = tok.find('=');
      const std::string key =
          eq == std::string::npos ? tok : tok.substr(0, eq);
      if (eq == std::string::npos ||
          (key != "pcie" && key != "nvlink" && key != "exec")) {
        *error = "unknown what-if clause '" + tok +
                 "' (want pcie=K, nvlink=K, exec=K, nocontention, noevict, "
                 "or baseline)";
        return false;
      }
      const std::string val = tok.substr(eq + 1);
      char* endp = nullptr;
      const double k = std::strtod(val.c_str(), &endp);
      if (val.empty() || endp != val.c_str() + val.size() ||
          !std::isfinite(k) || k <= 0) {
        *error = "bad scale in what-if clause '" + tok +
                 "' (want a positive number)";
        return false;
      }
      if (key == "pcie") {
        exp.pcie_scale = k;
      } else if (key == "nvlink") {
        exp.nvlink_scale = k;
      } else {
        exp.exec_scale = k;
      }
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  exp.name = CanonicalName(exp);
  *out = std::move(exp);
  return true;
}

std::vector<WhatIfExperiment> DefaultWhatIfExperiments() {
  static const char* const kSpecs[] = {"pcie=2",       "nvlink=2",
                                       "exec=2",       "nocontention",
                                       "noevict",      "pcie=2,nvlink=2"};
  std::vector<WhatIfExperiment> out;
  for (const char* spec : kSpecs) {
    WhatIfExperiment exp;
    std::string err;
    const bool ok = ParseWhatIfExperiment(spec, &exp, &err);
    DP_CHECK(ok);
    out.push_back(std::move(exp));
  }
  return out;
}

WhatIfReplay ReplayWhatIf(const CausalGraph& graph,
                          const WhatIfExperiment& exp) {
  InMemorySource src(graph);
  return Replayer(src, exp).Run();
}

// ReplaySource over a binary journal with chunk-windowed residency. Open()
// runs one sequential validating pass to build the O(requests) metadata
// index; Replay() then loads each chunk's node/edge state the first time one
// of its requests is dispatched (or its arrival fires) and frees a request's
// state once its last node has finished replaying.
struct WindowedJournal::Impl : public ReplaySource {
  // Per-request node/edge state while resident. unordered_map gives
  // reference stability across inserts, which FinishNode relies on.
  struct ReqState {
    std::vector<CpNode> nodes;                // id order
    std::vector<std::vector<CpNodeId>> succ;  // by node index, seq order
    std::vector<int> pending;                 // by node index
    std::vector<CpNodeId> non_arrival;        // global ids, id order
    std::size_t unfinished = 0;
    bool done = false;
  };

  bool Open(const std::string& path, std::string* error) {
    if (!reader_.Open(path)) {
      *error = reader_.error();
      return false;
    }
    for (;;) {
      const std::uint64_t offset = reader_.next_offset();
      JournalChunk chunk;
      const JournalReadStatus status = reader_.Next(&chunk);
      if (status == JournalReadStatus::kError) {
        *error = reader_.error();
        return false;
      }
      if (status == JournalReadStatus::kFooter) {
        break;
      }
      const auto chunk_index = static_cast<std::uint32_t>(chunk_offsets_.size());
      chunk_offsets_.push_back(offset);
      for (std::string& name : chunk.new_processes) {
        processes_.push_back(std::move(name));
      }
      for (CpRequestRecord& rec : chunk.requests) {
        const auto rid = static_cast<std::size_t>(rec.request.id);
        if (rid >= requests_.size()) {
          requests_.resize(rid + 1);
          chunk_of_.resize(rid + 1, 0);
          terminal_res_.resize(rid + 1, -1);
        }
        if (requests_[rid].id >= 0) {
          *error = path + ": duplicate request id " + std::to_string(rid);
          return false;
        }
        requests_[rid] = rec.request;
        chunk_of_[rid] = chunk_index;
        if (rec.request.terminal_node >= 0) {
          const auto it = std::lower_bound(
              rec.nodes.begin(), rec.nodes.end(), rec.request.terminal_node,
              [](const CpNode& n, CpNodeId v) { return n.id < v; });
          DP_CHECK(it != rec.nodes.end() &&
                   it->id == rec.request.terminal_node);
          const auto [rit, inserted] = resource_ids_.emplace(
              it->resource, static_cast<int>(resources_.size()));
          if (inserted) {
            resources_.push_back(it->resource);
          }
          terminal_res_[rid] = rit->second;
        }
      }
    }
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      if (requests_[i].id != static_cast<int>(i)) {
        *error = path + ": journal request ids are not dense (missing request " +
                 std::to_string(i) + ")";
        return false;
      }
    }
    return true;
  }

  void ResetReplayState() {
    chunk_loaded_.assign(chunk_offsets_.size(), 0);
    states_.clear();
    where_.clear();
  }

  void EnsureResident(int rid) {
    const std::uint32_t c = chunk_of_[Idx(rid)];
    if (chunk_loaded_[c] != 0) {
      return;
    }
    chunk_loaded_[c] = 1;
    JournalChunk chunk;
    const bool ok =
        reader_.ReadChunkAt(chunk_offsets_[c], processes_.size(), &chunk);
    DP_CHECK(ok);  // the sequential pass already validated this chunk
    for (CpRequestRecord& rec : chunk.requests) {
      if (rec.request.completion < 0) {
        continue;  // never replayed; keep it off the resident set
      }
      const int id = rec.request.id;
      ReqState& st = states_[id];
      st.nodes = std::move(rec.nodes);
      const std::size_t n = st.nodes.size();
      st.succ.assign(n, {});
      st.pending.assign(n, 0);
      st.unfinished = n;
      const auto index_of = [&st](CpNodeId node_id) {
        const auto it = std::lower_bound(
            st.nodes.begin(), st.nodes.end(), node_id,
            [](const CpNode& nd, CpNodeId v) { return nd.id < v; });
        DP_CHECK(it != st.nodes.end() && it->id == node_id);
        return static_cast<std::size_t>(it - st.nodes.begin());
      };
      for (const CpEdgeRec& e : rec.edges) {
        st.succ[index_of(e.from)].push_back(e.to);
        ++st.pending[index_of(e.to)];
      }
      for (std::size_t i = 0; i < n; ++i) {
        where_.emplace(st.nodes[i].id, std::make_pair(id, i));
        if (st.nodes[i].kind != CpKind::kArrival) {
          ++st.pending[i];  // the release token
          st.non_arrival.push_back(st.nodes[i].id);
        }
      }
    }
    max_resident_ = std::max(max_resident_, states_.size());
  }

  std::pair<ReqState*, std::size_t> Locate(CpNodeId id) {
    const auto it = where_.find(id);
    DP_CHECK(it != where_.end());  // touched a non-resident node
    return {&states_.at(it->second.first), it->second.second};
  }

  // --- ReplaySource ---
  std::size_t num_requests() const override { return requests_.size(); }
  int num_processes() const override {
    return static_cast<int>(processes_.size());
  }
  const CpRequest& request(int id) const override {
    return requests_[Idx(id)];
  }
  const std::string& terminal_resource(int id) const override {
    return resources_[Idx(terminal_res_[Idx(id)])];
  }
  const std::vector<CpNodeId>& request_nodes(int id) override {
    EnsureResident(id);
    return states_.at(id).non_arrival;
  }
  void BeforeArrival(int id) override { EnsureResident(id); }
  const CpNode& node(CpNodeId id) override {
    const auto [st, i] = Locate(id);
    return st->nodes[i];
  }
  const std::vector<CpNodeId>& successors(CpNodeId id) override {
    const auto [st, i] = Locate(id);
    return st->succ[i];
  }
  int& pending(CpNodeId id) override {
    const auto [st, i] = Locate(id);
    return st->pending[i];
  }
  void OnNodeFinished(CpNodeId id) override {
    const auto it = where_.find(id);
    DP_CHECK(it != where_.end());
    const int rid = it->second.first;
    where_.erase(it);
    const auto sit = states_.find(rid);
    DP_CHECK(sit != states_.end() && sit->second.unfinished > 0);
    if (--sit->second.unfinished == 0 && sit->second.done) {
      states_.erase(sit);  // the window shrinks as requests retire
    }
  }
  void OnRequestDone(int id) override { states_.at(id).done = true; }

  // Metadata index (sequential pass; resident for the journal's lifetime).
  JournalReader reader_;
  std::vector<std::string> processes_;
  std::vector<CpRequest> requests_;
  std::vector<std::uint32_t> chunk_of_;   // request id -> chunk index
  std::vector<int> terminal_res_;         // request id -> resources_ index
  std::vector<std::string> resources_;    // interned terminal resources
  std::unordered_map<std::string, int> resource_ids_;
  std::vector<std::uint64_t> chunk_offsets_;

  // Per-replay windowed state.
  std::vector<char> chunk_loaded_;
  std::unordered_map<int, ReqState> states_;
  // node id -> (request id, index into its ReqState vectors)
  std::unordered_map<CpNodeId, std::pair<int, std::size_t>> where_;
  std::size_t max_resident_ = 0;
};

WindowedJournal::WindowedJournal() : impl_(std::make_unique<Impl>()) {}
WindowedJournal::~WindowedJournal() = default;

bool WindowedJournal::Open(const std::string& path, std::string* error) {
  DP_CHECK(error != nullptr);
  return impl_->Open(path, error);
}

const std::vector<std::string>& WindowedJournal::processes() const {
  return impl_->processes_;
}

const std::vector<CpRequest>& WindowedJournal::requests() const {
  return impl_->requests_;
}

WhatIfReplay WindowedJournal::Replay(const WhatIfExperiment& exp) {
  impl_->ResetReplayState();
  return Replayer(*impl_, exp).Run();
}

std::size_t WindowedJournal::max_resident_requests() const {
  return impl_->max_resident_;
}

}  // namespace deepplan
