#include "src/obs/utilization.h"

#include <algorithm>
#include <map>
#include <utility>

namespace deepplan {

namespace {

struct RawInterval {
  Nanos start = 0;
  Nanos end = 0;
  Nanos contended = 0;
  CpKind kind = CpKind::kExec;
};

}  // namespace

UtilizationReport ComputeUtilization(const CausalGraph& graph) {
  // Observation window per process: [min arrival, max completion].
  std::map<int, std::pair<Nanos, Nanos>> windows;
  for (const CpRequest& req : graph.requests()) {
    if (req.completion < 0) {
      continue;
    }
    auto [it, fresh] =
        windows.emplace(req.process, std::make_pair(req.arrival, req.completion));
    if (!fresh) {
      it->second.first = std::min(it->second.first, req.arrival);
      it->second.second = std::max(it->second.second, req.completion);
    }
  }

  // Bucket node intervals by (process, resource). std::map keys give the
  // deterministic (process, resource-name) output order for free.
  std::map<std::pair<int, std::string>, std::vector<RawInterval>> buckets;
  for (const CpNode& node : graph.nodes()) {
    if (node.resource.empty() || node.end <= node.start) {
      continue;
    }
    const CpRequest& req =
        graph.requests()[static_cast<std::size_t>(node.request)];
    RawInterval raw;
    raw.start = node.start;
    raw.end = node.end;
    raw.kind = node.kind;
    if (node.solo >= 0) {
      raw.contended = std::max<Nanos>(0, (node.end - node.start) - node.solo);
    }
    buckets[{req.process, node.resource}].push_back(raw);
  }

  UtilizationReport report;
  report.resources.reserve(buckets.size());
  for (auto& [key, raws] : buckets) {
    std::sort(raws.begin(), raws.end(), [](const RawInterval& a,
                                           const RawInterval& b) {
      return a.start != b.start ? a.start < b.start : a.end < b.end;
    });
    ResourceTimeline timeline;
    timeline.process = key.first;
    timeline.resource = key.second;
    // Dominant kind: the kind covering the most raw (pre-merge) time.
    std::map<CpKind, Nanos> by_kind;
    for (const RawInterval& raw : raws) {
      by_kind[raw.kind] += raw.end - raw.start;
    }
    CpKind dominant = raws.front().kind;
    Nanos dominant_time = -1;
    for (const auto& [kind, time] : by_kind) {
      if (time > dominant_time) {
        dominant = kind;
        dominant_time = time;
      }
    }
    timeline.kind = CpKindName(dominant);

    for (const RawInterval& raw : raws) {
      if (!timeline.intervals.empty() &&
          raw.start <= timeline.intervals.back().end) {
        UtilInterval& open = timeline.intervals.back();
        open.end = std::max(open.end, raw.end);
        open.contended += raw.contended;
      } else {
        timeline.intervals.push_back({raw.start, raw.end, raw.contended});
      }
    }
    for (const UtilInterval& iv : timeline.intervals) {
      timeline.busy += iv.end - iv.start;
      timeline.contended += std::min(iv.contended, iv.end - iv.start);
    }
    const auto window = windows.find(key.first);
    if (window != windows.end()) {
      timeline.span = window->second.second - window->second.first;
    }
    timeline.utilization =
        timeline.span > 0
            ? static_cast<double>(timeline.busy) / static_cast<double>(timeline.span)
            : 0.0;
    report.resources.push_back(std::move(timeline));
  }
  return report;
}

}  // namespace deepplan
