// Host-side self-profiler: where does the *simulator process* spend its
// wall-clock? Hierarchical scoped phase timers (workload generation, event
// dispatch, fair-share solves, exec-stream modelling, validator hooks,
// journal/trace serialization, ...) accumulate into a thread-confined
// SelfProfiler "lane", stitched across SweepRunner workers in task order the
// same way TraceRecorder::Adopt() stitches traces. The report answers
// ROADMAP item 1's open question ("where do the remaining seconds of the 1M
// request run go?") and is the partitioning data PDES (item 2) needs.
//
// Cost model (the part that makes this usable on the hot path):
//  - Disabled (no lane installed — the default): every scope is one
//    thread-local load and a branch. No allocation (pinned by
//    tests/selfprof_test.cc with a replaced global operator new).
//  - Enabled: most phases are fully timed (two monotonic clock reads per
//    entry). Phases that fire millions of times per run (exec.stream,
//    fabric.fair_share, check.validate) are *count-always, time-sampled*:
//    every entry bumps the node's count, but only every
//    kSampledPhasePeriod-th entry pays for clock reads. That keeps the
//    enabled overhead under the <3% gate run_all.sh enforces while counts
//    stay exact.
//
// Determinism contract: phase *counts* (and `sampled` counts) are a pure
// function of the simulated run, so they are byte-identical across
// DEEPPLAN_JOBS — DeterministicReportJson() renders exactly that surface
// (counts + tree shape + deterministic counters, no *_ns fields, no host
// stats) and tests compare it across jobs 1/2/8. Durations are measured on
// the real clock and live only under *_ns keys / the "host" block, mirroring
// how bench wall readings live only under "wall_clock_ms".
//
// Exactness invariant: a sampled (timed) entry only ever runs inside timed
// ancestors — when an entry skips timing, every scope nested under it is
// suppressed to count-only. Hence for every node
//     inclusive_ns >= sum(child.inclusive_ns)
// holds *exactly* on measured values, and exclusive_ns = inclusive_ns -
// sum(child.inclusive_ns) is never negative. trace_lint --selfprof checks
// this. Estimated full-phase time (estimated_ns = inclusive_ns * count /
// sampled) is derived at render time and clearly marked as an estimate.
//
// Concurrency contract: like TraceRecorder, a SelfProfiler is deliberately
// NOT internally synchronized — it is thread-confined via a thread_local
// lane pointer (InstallLane). Each parallel sweep task profiles into its own
// lane carried in its result slot; the aggregator merges them in task-index
// order (ThreadPool::Wait is the happens-before edge). See DESIGN.md §15.
#ifndef SRC_OBS_SELFPROF_H_
#define SRC_OBS_SELFPROF_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/logging.h"

namespace deepplan {
namespace selfprof {

// Phase identity doubles as the child slot index inside a tree node, so the
// enum must stay dense. Names are dotted "<subsystem>.<what>" strings that
// appear verbatim in reports.
enum class Phase : std::uint8_t {
  kTotal = 0,         // lane root: lifetime of the InstallLane
  kSetup,             // point.setup: topology/server/instance construction
  kWorkloadGen,       // workload.generate: trace synthesis / CSV ingest
  kWarmup,            // server.warmup: initial residency placement
  kSimDispatch,       // sim.dispatch: the event loop (everything inside Run)
  kColdStart,         // engine.cold_start: cold-run DAG construction
  kFairShare,         // fabric.fair_share: max-min re-solve (sampled)
  kExecStream,        // exec.stream: stream op start + synchronous op body
                      //              (sampled)
  kValidate,          // check.validate: heavy SimValidator hooks (sampled)
  kJournalSerialize,  // journal.serialize: causal-journal encode/flush
  kTraceSerialize,    // trace.serialize: Chrome-trace JSON render
  kMetricsSnapshot,   // metrics.snapshot: registry/serving-metric extraction
  kReportRender,      // report.render: BENCH json + stdout table render
};
inline constexpr int kNumPhases = 13;

const char* PhaseName(Phase phase);

// Sampling period (power of two) for the hot phases; 1 = every entry timed.
// constexpr so the per-entry gate in Enter() folds to enum compares — these
// run tens of millions of times per 1M-request point.
inline constexpr std::uint64_t kSampledPhasePeriod = 64;
constexpr std::uint64_t PhasePeriod(Phase phase) {
  return (phase == Phase::kFairShare || phase == Phase::kExecStream ||
          phase == Phase::kValidate)
             ? kSampledPhasePeriod
             : 1;
}

// Process-wide counters attributed to the installed lane. kHeartbeats is
// wall-dependent (how many progress lines fired depends on real time), so it
// is excluded from the deterministic projection.
enum class Counter : std::uint8_t {
  kEventsDispatched = 0,  // events popped by Simulator::RunUntil
  kValidatorChecks,       // SimValidator checks executed (validation on only)
  kHeartbeats,            // DEEPPLAN_PROGRESS lines emitted (wall-dependent)
};
inline constexpr int kNumCounters = 3;

const char* CounterName(Counter counter);
bool CounterDeterministic(Counter counter);

// The single place this codebase reads the host monotonic clock for
// profiling. Centralized so the determinism linter sees exactly one
// suppressed raw-entropy site for the whole subsystem.
std::int64_t MonotonicNowNs();

// Resident-set readings from /proc/self/status (kB); 0 where unavailable.
std::int64_t CurrentRssKb();
std::int64_t PeakRssKb();

// One profiling lane: a tree of phase nodes plus counters. Thread-confined
// (see header comment); copyable so sweep tasks can return it by value in
// their result structs.
class SelfProfiler {
 public:
  struct Node {
    Phase phase = Phase::kTotal;
    std::int32_t parent = -1;
    std::uint64_t count = 0;    // scope entries (deterministic)
    std::uint64_t sampled = 0;  // entries that were timed (deterministic)
    std::uint64_t inclusive_ns = 0;  // wall-clock over the sampled entries
    std::array<std::int32_t, kNumPhases> child;  // -1 = no such child yet
  };

  SelfProfiler();

  // Scope machinery — call through ScopedPhase / InstallLane, not directly.
  // Inline: the sampled phases enter tens of millions of times per run, so
  // the count-only path must stay a handful of instructions to hold the <3%
  // enabled-overhead gate.
  //
  // Re-entering the phase of the innermost open node collapses to a count
  // bump (recursion guard: Stream::MaybeStartNext re-enters synchronously).
  bool ReenterCurrent(Phase phase) {
    if (current_ < 0 ||
        nodes_[static_cast<std::size_t>(current_)].phase != phase) {
      return false;
    }
    ++nodes_[static_cast<std::size_t>(current_)].count;
    return true;
  }
  // Opens a child scope; returns true when this entry is timed (the caller
  // then owes ExitTimed with the elapsed ns, else ExitUntimed).
  bool Enter(Phase phase) {
    std::int32_t index;
    if (phase == Phase::kTotal) {
      // Root scope, opened by InstallLane; re-installation accumulates.
      DP_CHECK(current_ < 0);
      index = 0;
    } else {
      DP_CHECK(current_ >= 0);  // scopes outside an installed root are a bug
      const std::int32_t existing =
          nodes_[static_cast<std::size_t>(current_)]
              .child[static_cast<std::size_t>(phase)];
      index = existing >= 0 ? existing : FindOrAddChild(current_, phase);
    }
    Node& node = nodes_[static_cast<std::size_t>(index)];
    ++node.count;
    const std::int32_t parent = current_;
    current_ = index;
    bool timed;
    if (suppress_ != 0) {
      timed = false;
    } else if (PhasePeriod(phase) == 1) {
      timed = true;
    } else if (parent > 0 &&
               PhasePeriod(nodes_[static_cast<std::size_t>(parent)].phase) >
                   1) {
      // Nested inside a sampled scope that is currently timing (suppress_ ==
      // 0 proves its gate passed): time unconditionally, otherwise this
      // node's own gate would almost never line up with the parent's and the
      // nested phase would starve for samples.
      timed = true;
    } else {
      timed = ((node.count - 1) & (PhasePeriod(phase) - 1)) == 0;
    }
    if (timed) {
      ++node.sampled;
    } else {
      ++suppress_;
    }
    return timed;
  }
  void ExitTimed(std::int64_t elapsed_ns) {
    DP_CHECK(current_ >= 0);
    Node& node = nodes_[static_cast<std::size_t>(current_)];
    node.inclusive_ns +=
        elapsed_ns > 0 ? static_cast<std::uint64_t>(elapsed_ns) : 0;
    current_ = node.parent;
  }
  void ExitUntimed() {
    DP_CHECK(current_ >= 0);
    DP_CHECK(suppress_ > 0);
    --suppress_;
    current_ = nodes_[static_cast<std::size_t>(current_)].parent;
  }

  void Add(Counter counter, std::uint64_t delta) {
    counters_[static_cast<std::size_t>(counter)] += delta;
  }

  // True once every opened scope (including the root) has closed — reports
  // may only be built from closed lanes.
  bool closed() const { return current_ < 0; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& root() const { return nodes_.front(); }
  std::uint64_t counter(Counter counter) const {
    return counters_[static_cast<std::size_t>(counter)];
  }

  // Adds `other`'s tree (matching nodes by phase path) and counters into
  // this lane. Both lanes must be closed. Used for the report's "aggregate".
  void Merge(const SelfProfiler& other);

 private:
  std::int32_t FindOrAddChild(std::int32_t parent, Phase phase);
  void MergeSubtree(std::int32_t dst, const SelfProfiler& other,
                    std::int32_t src);

  std::vector<Node> nodes_;    // nodes_[0] is the kTotal root
  std::int32_t current_ = -1;  // innermost open node, -1 = closed
  int suppress_ = 0;           // >0: inside an untimed entry, count-only
  std::uint64_t counters_[kNumCounters] = {};
};

namespace internal {
extern thread_local SelfProfiler* g_lane;
}  // namespace internal

// The lane scopes on this thread currently accumulate into (nullptr = off).
inline SelfProfiler* CurrentLane() { return internal::g_lane; }

// Attributes `delta` to a process counter; no-op (and no allocation) when no
// lane is installed.
inline void AddCount(Counter counter, std::uint64_t delta) {
  SelfProfiler* lane = CurrentLane();
  if (lane != nullptr) {
    lane->Add(counter, delta);
  }
}

// RAII phase scope. Constructing with no lane installed is a thread-local
// load and a branch; see the header cost model.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) {
    SelfProfiler* lane = CurrentLane();
    if (lane == nullptr || lane->ReenterCurrent(phase)) {
      return;
    }
    lane_ = lane;
    timed_ = lane->Enter(phase);
    if (timed_) {
      start_ns_ = MonotonicNowNs();
    }
  }
  ~ScopedPhase() {
    if (lane_ == nullptr) {
      return;
    }
    if (timed_) {
      lane_->ExitTimed(MonotonicNowNs() - start_ns_);
    } else {
      lane_->ExitUntimed();
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  SelfProfiler* lane_ = nullptr;
  bool timed_ = false;
  std::int64_t start_ns_ = 0;
};

// Installs `lane` as this thread's profiling destination and opens its root
// (kTotal) scope; restores the previously installed lane on destruction so
// nesting — SweepRunner with jobs=1 runs tasks inline on a thread that may
// already hold a lane — shadows instead of clobbering. nullptr = no-op, so
// call sites can write InstallLane(enabled ? &lane : nullptr).
class InstallLane {
 public:
  explicit InstallLane(SelfProfiler* lane) : lane_(lane) {
    if (lane_ == nullptr) {
      return;
    }
    prev_ = internal::g_lane;
    internal::g_lane = lane_;
    lane_->Enter(Phase::kTotal);
    start_ns_ = MonotonicNowNs();
  }
  ~InstallLane() {
    if (lane_ == nullptr) {
      return;
    }
    lane_->ExitTimed(MonotonicNowNs() - start_ns_);
    internal::g_lane = prev_;
  }
  InstallLane(const InstallLane&) = delete;
  InstallLane& operator=(const InstallLane&) = delete;

 private:
  SelfProfiler* lane_;
  SelfProfiler* prev_ = nullptr;
  std::int64_t start_ns_ = 0;
};

#define DP_SELFPROF_CONCAT_INNER(a, b) a##b
#define DP_SELFPROF_CONCAT(a, b) DP_SELFPROF_CONCAT_INNER(a, b)
// Times the rest of the enclosing block as `phase` when a lane is installed.
#define DP_SELFPROF_SCOPE(phase)                                     \
  ::deepplan::selfprof::ScopedPhase DP_SELFPROF_CONCAT(               \
      dp_selfprof_scope_, __LINE__)(::deepplan::selfprof::Phase::phase)

// A named lane for report building (e.g. one per sweep point, in task
// order). The pointed-to lane must be closed and outlive the call.
struct LaneView {
  std::string name;
  const SelfProfiler* lane = nullptr;
};

// Schema-versioned report (see DESIGN.md §15 for the layout):
//   {"selfprof_report": {"schema_version": 1, "label": ..., "lanes": [...],
//     "aggregate": {...}, "host": {"rss_kb": ..., "rss_peak_kb": ...}}}
// Lanes render in the given order; node children render in phase-enum order.
inline constexpr int kSelfprofSchemaVersion = 1;
std::string ReportJson(const std::string& label,
                       const std::vector<LaneView>& lanes);

// The byte-deterministic projection of the same report: tree shape + counts
// + deterministic counters only (no *_ns, no host block, no wall-dependent
// counters). Identical across DEEPPLAN_JOBS for the same run.
std::string DeterministicReportJson(const std::string& label,
                                    const std::vector<LaneView>& lanes);

// Writes `json` (plus trailing newline) to `path`; false on I/O failure.
bool WriteReport(const std::string& path, const std::string& json);

}  // namespace selfprof
}  // namespace deepplan

#endif  // SRC_OBS_SELFPROF_H_
