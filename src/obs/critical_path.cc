#include "src/obs/critical_path.h"

#include <algorithm>

#include "src/check/validator.h"
#include "src/util/logging.h"

namespace deepplan {

CpAttribution& CpAttribution::operator+=(const CpAttribution& other) {
  queue += other.queue;
  evict += other.evict;
  pcie += other.pcie;
  pcie_contention += other.pcie_contention;
  nvlink += other.nvlink;
  exec += other.exec;
  sync += other.sync;
  return *this;
}

namespace {

// Charges `dur` nanoseconds of `node`'s on-path occupancy to the matching
// attribution component. `dur` can be less than the node's full duration when
// a later node overlapped it; transfer splits scale against the truncated
// amount so the total charged stays exactly `dur`.
void Charge(const CpNode& node, Nanos dur, CpAttribution* out) {
  switch (node.kind) {
    case CpKind::kArrival:
      out->sync += dur;  // zero-duration in practice
      break;
    case CpKind::kEvict:
      out->evict += dur;
      break;
    case CpKind::kPcie: {
      const Nanos full = node.end - node.start;
      const Nanos contention =
          node.solo >= 0 ? std::max<Nanos>(0, full - node.solo) : 0;
      const Nanos charged_contention = std::min(dur, contention);
      out->pcie_contention += charged_contention;
      out->pcie += dur - charged_contention;
      break;
    }
    case CpKind::kNvlink:
      out->nvlink += dur;
      break;
    case CpKind::kExec:
      out->exec += dur;
      break;
  }
}

}  // namespace

ProfileSummary AnalyzeCriticalPaths(const CausalGraph& graph) {
  // Predecessor lists, built once for the whole graph.
  std::vector<std::vector<CpNodeId>> preds(graph.nodes().size());
  for (const auto& [from, to] : graph.edges()) {
    preds[static_cast<std::size_t>(to)].push_back(from);
  }

  ProfileSummary summary;
  summary.requests.reserve(graph.requests().size());
  for (const CpRequest& req : graph.requests()) {
    if (req.completion < 0) {
      continue;  // never finished; nothing to attribute
    }
    RequestProfile profile;
    profile.request = req.id;
    profile.process = req.process;
    profile.instance = req.instance;
    profile.cold = req.cold;
    profile.arrival = req.arrival;
    profile.completion = req.completion;
    profile.latency = req.completion - req.arrival;

    // Backward walk from the terminal node. `cursor` is the next instant to
    // be explained; it starts at completion and ends at arrival, and every
    // decrement is charged to exactly one component.
    Nanos cursor = req.completion;
    CpNodeId at = req.terminal_node >= 0 ? req.terminal_node : req.arrival_node;
    std::vector<CpNodeId> rpath;
    // Cycle guard: a well-formed DAG walk visits each node at most once; the
    // node count bounds the walk regardless of input.
    std::size_t steps = 0;
    const std::size_t max_steps = graph.nodes().size() + 1;
    while (at >= 0 && steps++ < max_steps) {
      const CpNode& node = graph.nodes()[static_cast<std::size_t>(at)];
      rpath.push_back(at);
      const Nanos covered_start = std::min(node.start, cursor);
      Charge(node, cursor - covered_start, &profile.attribution);
      cursor = covered_start;
      if (at == req.arrival_node) {
        break;
      }
      // Pick the predecessor that released this node last: max end, ties to
      // the later-recorded node (deterministic — ids are append-ordered).
      CpNodeId best = -1;
      Nanos best_end = 0;
      for (const CpNodeId p : preds[static_cast<std::size_t>(at)]) {
        const CpNode& cand = graph.nodes()[static_cast<std::size_t>(p)];
        if (cand.request != req.id) {
          continue;
        }
        if (best < 0 || cand.end > best_end ||
            (cand.end == best_end && p > best)) {
          best = p;
          best_end = cand.end;
        }
      }
      if (best < 0) {
        // Orphan node (no recorded predecessor): the remaining wait back to
        // arrival is queue time.
        break;
      }
      const CpNode& pred = graph.nodes()[static_cast<std::size_t>(best)];
      const Nanos gap = std::max<Nanos>(0, cursor - std::min(pred.end, cursor));
      if (best == req.arrival_node) {
        profile.attribution.queue += gap;
      } else {
        profile.attribution.sync += gap;
      }
      cursor -= gap;
      at = best;
    }
    // Anything left before the first on-path node is queue wait.
    profile.attribution.queue += std::max<Nanos>(0, cursor - req.arrival);

    for (const CpNode& node : graph.nodes()) {
      if (node.request == req.id && node.kind == CpKind::kExec) {
        profile.exec_busy += node.end - node.start;
      }
    }

    std::reverse(rpath.begin(), rpath.end());
    profile.path = std::move(rpath);

    check::SimValidator::OnAttribution(req.id, profile.latency,
                                       profile.attribution.Total());
    summary.total += profile.attribution;
    summary.total_latency += profile.latency;
    if (profile.cold) {
      ++summary.cold_requests;
    }
    summary.requests.push_back(std::move(profile));
  }
  return summary;
}

}  // namespace deepplan
