#include "src/obs/metrics_registry.h"

#include <utility>

#include "src/obs/selfprof.h"

namespace deepplan {

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept
    : counters_(std::move(other.counters_)),
      gauges_(std::move(other.gauges_)),
      histograms_(std::move(other.histograms_)) {}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this != &other) {
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
  }
  return *this;
}

void MetricsRegistry::AddCounter(const std::string& name, std::int64_t delta) {
  MutexLock lock(mu_);
  counters_[name] += delta;
}

std::int64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double sample) {
  MutexLock lock(mu_);
  histograms_[name].Add(sample);
}

HistogramSummary MetricsRegistry::SummaryOf(Percentiles pct) {
  HistogramSummary summary;
  if (pct.empty()) {
    return summary;
  }
  summary.count = pct.count();
  summary.mean = pct.Mean();
  summary.min = pct.Min();
  summary.max = pct.Max();
  summary.p50 = pct.Percentile(50.0);
  summary.p95 = pct.Percentile(95.0);
  summary.p99 = pct.Percentile(99.0);
  return summary;
}

HistogramSummary MetricsRegistry::histogram(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return HistogramSummary{};
  }
  return SummaryOf(it->second);
}

JsonObject MetricsRegistry::Snapshot() const {
  DP_SELFPROF_SCOPE(kMetricsSnapshot);
  MutexLock lock(mu_);
  JsonObject doc;
  if (!counters_.empty()) {
    JsonObject counters;
    for (const auto& [name, value] : counters_) {
      counters.Set(name, value);
    }
    doc.SetRaw("counters", counters.Render());
  }
  if (!gauges_.empty()) {
    JsonObject gauges;
    for (const auto& [name, value] : gauges_) {
      gauges.Set(name, value);
    }
    doc.SetRaw("gauges", gauges.Render());
  }
  if (!histograms_.empty()) {
    JsonObject histograms;
    for (const auto& entry : histograms_) {
      const HistogramSummary s = SummaryOf(entry.second);
      histograms.SetRaw(entry.first, JsonObject()
                                       .Set("count", static_cast<std::int64_t>(s.count))
                                       .Set("mean", s.mean)
                                       .Set("min", s.min)
                                       .Set("max", s.max)
                                       .Set("p50", s.p50)
                                       .Set("p95", s.p95)
                                       .Set("p99", s.p99)
                                       .Render());
    }
    doc.SetRaw("histograms", histograms.Render());
  }
  return doc;
}

}  // namespace deepplan
