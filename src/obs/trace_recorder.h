// Simulation-wide trace recorder: the single sink for span, instant, and
// counter events emitted by the fabric (per-link bandwidth shares), the
// engine (per-layer load/migrate/exec), the server (queue depths, cold-start
// phases), and the cluster router (routing decisions). One recorder covers a
// whole run — every GPU, link, and request — and exports one Perfetto-loadable
// Chrome-trace JSON via ChromeTraceWriter.
//
// Cost model: components hold a `TraceRecorder*` that is nullptr when
// telemetry is off, so the disabled hot path is a single pointer test. A
// recorder constructed disabled additionally drops every call without
// touching its buffers (no allocation — pinned by obs_test), for call sites
// where threading the null check is awkward.
//
// Determinism: events append in simulation order (the simulator is
// single-threaded) and the writer sorts with deterministic tie-breaking, so
// a given run always renders to identical bytes.
//
// Concurrency contract: deliberately NOT internally synchronized. The event
// buffer is order-sensitive — its append order is part of the byte-identical
// output guarantee — so a mutex would not make a shared recorder correct; it
// would only replace a data race with timing-dependent event order. Instead
// a recorder is thread-confined: each parallel sweep task records into its
// own instance and the aggregator stitches them with Adopt() in task-index
// order (ThreadPool::Wait is the happens-before edge for the hand-off). The
// reference-returning accessor surface (document()) exists precisely because
// single ownership makes it safe. See DESIGN.md §14.
#ifndef SRC_OBS_TRACE_RECORDER_H_
#define SRC_OBS_TRACE_RECORDER_H_

#include <string>
#include <string_view>

#include "src/util/chrome_trace.h"
#include "src/util/time.h"

namespace deepplan {

class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  // Names a process group (one per server in a cluster run, one per strategy
  // when a bench traces several replays). Returns the pid to tag events with.
  // Disabled recorders return 0 without allocating.
  int RegisterProcess(std::string_view name);

  // A complete slice [start, start+duration) on `track` of process `pid`.
  void Span(int pid, std::string_view track, std::string_view name, Nanos start,
            Nanos duration);

  // A point-in-time marker (e.g. a routing decision).
  void Instant(int pid, std::string_view track, std::string_view name, Nanos ts);

  // A counter sample: `track` names the counter track (e.g. "bw/pcie/gpu0"),
  // `series` the value key inside it (e.g. "gbps").
  void Counter(int pid, std::string_view track, std::string_view series, Nanos ts,
               double value);

  // An async interval [begin, end] on `track`, paired by `id`. Unlike spans,
  // async intervals with distinct ids may overlap on one track — the server
  // uses them for per-request queue waits, which overlap whenever several
  // requests queue at once.
  void AsyncBegin(int pid, std::string_view track, std::string_view name,
                  std::uint64_t id, Nanos ts);
  void AsyncEnd(int pid, std::string_view track, std::string_view name,
                std::uint64_t id, Nanos ts);

  std::size_t size() const { return doc_.events.size(); }
  bool empty() const { return doc_.events.empty(); }
  const TraceDocument& document() const { return doc_; }

  // Merges `other` into this recorder, remapping its pids past the processes
  // already registered here (used to stitch per-task recorders from a
  // parallel sweep into one artifact, in deterministic task order).
  void Adopt(TraceRecorder&& other);

  std::string ToJson() const;
  bool WriteTo(const std::string& path) const;

 private:
  bool enabled_ = true;
  TraceDocument doc_;
};

}  // namespace deepplan

#endif  // SRC_OBS_TRACE_RECORDER_H_
