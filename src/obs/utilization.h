// Utilization timelines: for every (process, resource) pair that appears in a
// causal journal, merge that resource's node intervals into a busy/contended
// timeline and report aggregate utilization over the process's span
// [min arrival, max completion]. "Contended" covers the portion of transfer
// time in excess of solo speed (the same accounting the critical-path engine
// charges to pcie_contention), pro-rated across each transfer's interval.
//
// Resources are grouped per process (one process per strategy/replay in a
// sweep) so timelines from independent simulations never blend, and output
// ordering is (process id, resource name) — deterministic for a given
// journal.
#ifndef SRC_OBS_UTILIZATION_H_
#define SRC_OBS_UTILIZATION_H_

#include <string>
#include <vector>

#include "src/obs/causal_graph.h"
#include "src/util/time.h"

namespace deepplan {

// One merged busy interval on a resource. `contended` is the slice of the
// interval's duration attributable to fair-share slowdown (0 for exec/evict).
struct UtilInterval {
  Nanos start = 0;
  Nanos end = 0;
  Nanos contended = 0;
};

struct ResourceTimeline {
  int process = 0;
  std::string resource;      // e.g. "pcie/gpu0", "nvlink/1->0", "gpu0"
  std::string kind;          // dominant node kind on this resource
  std::vector<UtilInterval> intervals;  // merged, disjoint, sorted by start
  Nanos span = 0;            // process observation window length
  Nanos busy = 0;            // total merged busy time
  Nanos contended = 0;       // total contended time (subset of busy)
  double utilization = 0.0;  // busy / span (0 when span == 0)
};

struct UtilizationReport {
  std::vector<ResourceTimeline> resources;  // (process, resource) sorted
};

UtilizationReport ComputeUtilization(const CausalGraph& graph);

}  // namespace deepplan

#endif  // SRC_OBS_UTILIZATION_H_
