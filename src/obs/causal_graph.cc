#include "src/obs/causal_graph.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "src/obs/selfprof.h"
#include "src/util/json.h"
#include "src/util/json_parse.h"
#include "src/util/logging.h"

namespace deepplan {

const char* CpKindName(CpKind kind) {
  switch (kind) {
    case CpKind::kArrival:
      return "arrival";
    case CpKind::kEvict:
      return "evict";
    case CpKind::kPcie:
      return "pcie";
    case CpKind::kNvlink:
      return "nvlink";
    case CpKind::kExec:
      return "exec";
  }
  return "unknown";
}

namespace {

bool KindFromName(const std::string& name, CpKind* kind) {
  for (const CpKind k : {CpKind::kArrival, CpKind::kEvict, CpKind::kPcie,
                         CpKind::kNvlink, CpKind::kExec}) {
    if (name == CpKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

}  // namespace

int CausalGraph::RegisterProcess(std::string_view name) {
  if (!enabled_) {
    return 0;
  }
  // process_names_ stays confined to the recording thread even when
  // streaming; the sink is internally synchronized, so no graph lock here.
  process_names_.emplace_back(name);
  const int id = static_cast<int>(process_names_.size() - 1);
  if (stream_ != nullptr) {
    stream_->sink->OnProcess(id, process_names_.back());
  }
  return id;
}

void CausalGraph::AttachSink(CausalSink* sink) {
  DP_CHECK(sink != nullptr);
  DP_CHECK(enabled_);
  // Streaming must start from a clean graph: already-accumulated requests
  // would never retire, and already-registered processes would never reach
  // the sink.
  DP_CHECK(requests_.empty() && nodes_.empty() && process_names_.empty());
  stream_ = std::make_unique<StreamState>(sink);
}

CpNode* CausalGraph::LiveNode(CpNodeId node) {
  const auto owner = stream_->live_node_owner.find(node);
  DP_CHECK(owner != stream_->live_node_owner.end());
  CpRequestRecord& rec = stream_->live.find(owner->second)->second;
  // Node ids within a request are strictly increasing (global append order).
  const auto it = std::lower_bound(
      rec.nodes.begin(), rec.nodes.end(), node,
      [](const CpNode& n, CpNodeId id) { return n.id < id; });
  DP_CHECK(it != rec.nodes.end() && it->id == node);
  return &*it;
}

void CausalGraph::RetireLive(std::map<int, CpRequestRecord>::iterator it) {
  CpRequestRecord record = std::move(it->second);
  for (const CpNode& node : record.nodes) {
    stream_->live_node_owner.erase(node.id);
  }
  stream_->live.erase(it);
  stream_->sink->OnRequestRetired(std::move(record));
}

void CausalGraph::FlushOpenRequests() {
  DP_CHECK(stream_ != nullptr);
  MutexLock lock(stream_->mu);
  while (!stream_->live.empty()) {
    RetireLive(stream_->live.begin());
  }
}

int CausalGraph::BeginRequest(int process, int instance, Nanos arrival) {
  if (!enabled_) {
    return -1;
  }
  CpRequest req;
  req.process = process;
  req.instance = instance;
  req.arrival = arrival;
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    req.id = static_cast<int>(stream_->next_request++);
    CpRequestRecord rec;
    rec.request = req;
    stream_->live.emplace(req.id, std::move(rec));
    const CpNodeId root = AddNodeLocked(req.id, CpKind::kArrival, "arrival",
                                        "", arrival, arrival,
                                        /*bytes=*/0, /*solo=*/-1);
    stream_->live.find(req.id)->second.request.arrival_node = root;
    return req.id;
  }
  req.id = static_cast<int>(requests_.size());
  requests_.push_back(req);
  const CpNodeId root = AddNode(req.id, CpKind::kArrival, "arrival", "",
                                arrival, arrival);
  requests_.back().arrival_node = root;
  return req.id;
}

CpNodeId CausalGraph::AddNode(int request, CpKind kind, std::string label,
                              std::string resource, Nanos start, Nanos end,
                              std::int64_t bytes, Nanos solo) {
  if (!enabled_ || request < 0) {
    return -1;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    return AddNodeLocked(request, kind, std::move(label), std::move(resource),
                         start, end, bytes, solo);
  }
  CpNode node;
  node.request = request;
  node.kind = kind;
  node.label = std::move(label);
  node.resource = std::move(resource);
  node.start = start;
  node.end = end;
  node.bytes = bytes;
  node.solo = solo;
  DP_CHECK(request < static_cast<int>(requests_.size()));
  node.id = static_cast<CpNodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

CpNodeId CausalGraph::AddNodeLocked(int request, CpKind kind,
                                    std::string label, std::string resource,
                                    Nanos start, Nanos end, std::int64_t bytes,
                                    Nanos solo) {
  CpNode node;
  node.request = request;
  node.kind = kind;
  node.label = std::move(label);
  node.resource = std::move(resource);
  node.start = start;
  node.end = end;
  node.bytes = bytes;
  node.solo = solo;
  const auto it = stream_->live.find(request);
  DP_CHECK(it != stream_->live.end());
  node.id = static_cast<CpNodeId>(stream_->next_node++);
  stream_->live_node_owner.emplace(node.id, request);
  it->second.nodes.push_back(std::move(node));
  return it->second.nodes.back().id;
}

void CausalGraph::SetNodePath(CpNodeId node, std::vector<CpHop> path) {
  if (!enabled_ || node < 0) {
    return;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    LiveNode(node)->path = std::move(path);
    return;
  }
  DP_CHECK(node < static_cast<CpNodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)].path = std::move(path);
}

void CausalGraph::SetNodeDhaPcie(CpNodeId node, Nanos dha_pcie) {
  if (!enabled_ || node < 0) {
    return;
  }
  DP_CHECK(dha_pcie >= 0);
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    LiveNode(node)->dha_pcie = dha_pcie;
    return;
  }
  DP_CHECK(node < static_cast<CpNodeId>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)].dha_pcie = dha_pcie;
}

void CausalGraph::AddEdge(CpNodeId from, CpNodeId to) {
  if (!enabled_ || from < 0 || to < 0) {
    return;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    const auto from_owner = stream_->live_node_owner.find(from);
    const auto to_owner = stream_->live_node_owner.find(to);
    DP_CHECK(from_owner != stream_->live_node_owner.end());
    DP_CHECK(to_owner != stream_->live_node_owner.end());
    // The chunked journal's self-containment invariant: edges never cross
    // requests (every recorder chains a request's own nodes).
    DP_CHECK(from_owner->second == to_owner->second);
    stream_->live.find(to_owner->second)
        ->second.edges.push_back(CpEdgeRec{stream_->next_edge++, from, to});
    return;
  }
  DP_CHECK(from < static_cast<CpNodeId>(nodes_.size()));
  DP_CHECK(to < static_cast<CpNodeId>(nodes_.size()));
  edges_.emplace_back(from, to);
}

void CausalGraph::MarkCold(int request) {
  if (!enabled_ || request < 0) {
    return;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    const auto it = stream_->live.find(request);
    DP_CHECK(it != stream_->live.end());
    it->second.request.cold = true;
    return;
  }
  DP_CHECK(request < static_cast<int>(requests_.size()));
  requests_[static_cast<std::size_t>(request)].cold = true;
}

void CausalGraph::EndRequest(int request, Nanos completion, CpNodeId terminal) {
  if (!enabled_ || request < 0) {
    return;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    const auto it = stream_->live.find(request);
    DP_CHECK(it != stream_->live.end());
    CpRequest& req = it->second.request;
    req.completion = completion;
    req.terminal_node = terminal >= 0 ? terminal : req.arrival_node;
    RetireLive(it);
    return;
  }
  DP_CHECK(request < static_cast<int>(requests_.size()));
  CpRequest& req = requests_[static_cast<std::size_t>(request)];
  req.completion = completion;
  req.terminal_node = terminal >= 0 ? terminal : req.arrival_node;
}

CpNodeId CausalGraph::arrival_node(int request) const {
  if (!enabled_ || request < 0) {
    return -1;
  }
  if (stream_ != nullptr) {
    MutexLock lock(stream_->mu);
    const auto it = stream_->live.find(request);
    DP_CHECK(it != stream_->live.end());
    return it->second.request.arrival_node;
  }
  DP_CHECK(request < static_cast<int>(requests_.size()));
  return requests_[static_cast<std::size_t>(request)].arrival_node;
}

void CausalGraph::Adopt(CausalGraph&& other) {
  if (!enabled_) {
    return;
  }
  DP_CHECK(stream_ == nullptr && other.stream_ == nullptr);
  const int process_base = static_cast<int>(process_names_.size());
  const int request_base = static_cast<int>(requests_.size());
  const CpNodeId node_base = static_cast<CpNodeId>(nodes_.size());
  for (std::string& name : other.process_names_) {
    process_names_.push_back(std::move(name));
  }
  for (CpRequest& req : other.requests_) {
    req.id += request_base;
    req.process += process_base;
    if (req.arrival_node >= 0) {
      req.arrival_node += node_base;
    }
    if (req.terminal_node >= 0) {
      req.terminal_node += node_base;
    }
    requests_.push_back(std::move(req));
  }
  for (CpNode& node : other.nodes_) {
    node.id += node_base;
    node.request += request_base;
    nodes_.push_back(std::move(node));
  }
  for (const auto& [from, to] : other.edges_) {
    edges_.emplace_back(from + node_base, to + node_base);
  }
  other = CausalGraph(other.enabled_);
}

std::string CausalGraph::ToJson() const {
  // A streaming graph's journal lives in its sink; there is nothing here to
  // serialize (materialize it back with ReadJournalToGraph instead).
  DP_CHECK(stream_ == nullptr);
  DP_SELFPROF_SCOPE(kJournalSerialize);
  JsonArray processes;
  for (const std::string& name : process_names_) {
    processes.Add(name);
  }
  JsonArray requests;
  for (const CpRequest& req : requests_) {
    requests.AddRaw(JsonObject()
                        .Set("id", req.id)
                        .Set("process", req.process)
                        .Set("instance", req.instance)
                        .Set("cold", req.cold)
                        .Set("arrival_ns", static_cast<std::int64_t>(req.arrival))
                        .Set("completion_ns",
                             static_cast<std::int64_t>(req.completion))
                        .Set("arrival_node", req.arrival_node)
                        .Set("terminal_node", req.terminal_node)
                        .Render());
  }
  JsonArray nodes;
  for (const CpNode& node : nodes_) {
    JsonObject n;
    n.Set("id", node.id)
        .Set("request", node.request)
        .Set("kind", CpKindName(node.kind))
        .Set("label", node.label)
        .Set("resource", node.resource)
        .Set("start_ns", static_cast<std::int64_t>(node.start))
        .Set("end_ns", static_cast<std::int64_t>(node.end))
        .Set("bytes", node.bytes)
        .Set("solo_ns", static_cast<std::int64_t>(node.solo));
    // Optional fields, omitted when unset so journals without them round-trip
    // byte-identically.
    if (!node.path.empty()) {
      JsonArray hops;
      for (const CpHop& hop : node.path) {
        hops.AddRaw(JsonObject()
                        .Set("link", hop.link)
                        .Set("capacity", hop.capacity)
                        .Render());
      }
      n.SetRaw("path", hops.Render());
    }
    if (node.dha_pcie != 0) {
      n.Set("dha_pcie_ns", static_cast<std::int64_t>(node.dha_pcie));
    }
    nodes.AddRaw(n.Render());
  }
  JsonArray edges;
  for (const auto& [from, to] : edges_) {
    edges.AddRaw(JsonArray().Add(from).Add(to).Render());
  }
  JsonObject journal;
  journal.SetRaw("processes", processes.Render())
      .SetRaw("requests", requests.Render())
      .SetRaw("nodes", nodes.Render())
      .SetRaw("edges", edges.Render());
  JsonObject doc;
  doc.SetRaw("causal_journal", journal.Render());
  return doc.Render();
}

bool CausalGraph::WriteTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

namespace {

bool GetInt(const JsonValue& obj, const char* key, std::int64_t* out,
            std::string* error, const char* context) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) {
    *error = std::string(context) + ": missing numeric \"" + key + "\"";
    return false;
  }
  *out = static_cast<std::int64_t>(v->AsNumber());
  return true;
}

bool GetString(const JsonValue& obj, const char* key, std::string* out,
               std::string* error, const char* context) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    *error = std::string(context) + ": missing string \"" + key + "\"";
    return false;
  }
  *out = v->AsString();
  return true;
}

}  // namespace

bool CausalGraph::FromJson(const std::string& text, CausalGraph* out,
                           std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  const JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    *error = "not valid JSON: " + parsed.error;
    return false;
  }
  const JsonValue* journal =
      parsed.value.is_object() ? parsed.value.Find("causal_journal") : nullptr;
  if (journal == nullptr || !journal->is_object()) {
    *error = "missing \"causal_journal\" object";
    return false;
  }
  CausalGraph graph(/*enabled=*/true);
  const JsonValue* processes = journal->Find("processes");
  if (processes == nullptr || !processes->is_array()) {
    *error = "missing \"processes\" array";
    return false;
  }
  for (const JsonValue& p : processes->items()) {
    if (!p.is_string()) {
      *error = "process name is not a string";
      return false;
    }
    graph.process_names_.push_back(p.AsString());
  }
  const JsonValue* nodes = journal->Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    *error = "missing \"nodes\" array";
    return false;
  }
  for (const JsonValue& n : nodes->items()) {
    if (!n.is_object()) {
      *error = "node is not an object";
      return false;
    }
    CpNode node;
    std::int64_t id = 0, request = 0, start = 0, end = 0, bytes = 0, solo = 0;
    std::string kind;
    if (!GetInt(n, "id", &id, error, "node") ||
        !GetInt(n, "request", &request, error, "node") ||
        !GetString(n, "kind", &kind, error, "node") ||
        !GetString(n, "label", &node.label, error, "node") ||
        !GetString(n, "resource", &node.resource, error, "node") ||
        !GetInt(n, "start_ns", &start, error, "node") ||
        !GetInt(n, "end_ns", &end, error, "node") ||
        !GetInt(n, "bytes", &bytes, error, "node") ||
        !GetInt(n, "solo_ns", &solo, error, "node")) {
      return false;
    }
    if (!KindFromName(kind, &node.kind)) {
      *error = "unknown node kind \"" + kind + "\"";
      return false;
    }
    // Optional: fabric route of a transfer node.
    if (const JsonValue* path = n.Find("path"); path != nullptr) {
      if (!path->is_array()) {
        *error = "node \"path\" is not an array";
        return false;
      }
      for (const JsonValue& h : path->items()) {
        if (!h.is_object()) {
          *error = "path hop is not an object";
          return false;
        }
        CpHop hop;
        if (!GetString(h, "link", &hop.link, error, "path hop")) {
          return false;
        }
        const JsonValue* capacity = h.Find("capacity");
        if (capacity == nullptr || !capacity->is_number() ||
            capacity->AsNumber() <= 0.0) {
          *error = "path hop: missing positive numeric \"capacity\"";
          return false;
        }
        hop.capacity = capacity->AsNumber();
        node.path.push_back(std::move(hop));
      }
    }
    // Optional: PCIe-bandwidth-dependent share of an exec node.
    if (const JsonValue* dha = n.Find("dha_pcie_ns"); dha != nullptr) {
      if (!dha->is_number() || dha->AsNumber() < 0.0) {
        *error = "node \"dha_pcie_ns\" is not a non-negative number";
        return false;
      }
      node.dha_pcie = static_cast<Nanos>(dha->AsNumber());
    }
    if (id != static_cast<std::int64_t>(graph.nodes_.size())) {
      *error = "node ids must be dense and in order";
      return false;
    }
    node.id = static_cast<CpNodeId>(id);
    node.request = static_cast<int>(request);
    node.start = start;
    node.end = end;
    node.bytes = bytes;
    node.solo = solo;
    if (node.end < node.start) {
      *error = "node " + std::to_string(id) + " ends before it starts";
      return false;
    }
    graph.nodes_.push_back(std::move(node));
  }
  const JsonValue* requests = journal->Find("requests");
  if (requests == nullptr || !requests->is_array()) {
    *error = "missing \"requests\" array";
    return false;
  }
  for (const JsonValue& r : requests->items()) {
    if (!r.is_object()) {
      *error = "request is not an object";
      return false;
    }
    CpRequest req;
    std::int64_t id = 0, process = 0, instance = 0, arrival = 0, completion = 0,
                 arrival_node = 0, terminal_node = 0;
    if (!GetInt(r, "id", &id, error, "request") ||
        !GetInt(r, "process", &process, error, "request") ||
        !GetInt(r, "instance", &instance, error, "request") ||
        !GetInt(r, "arrival_ns", &arrival, error, "request") ||
        !GetInt(r, "completion_ns", &completion, error, "request") ||
        !GetInt(r, "arrival_node", &arrival_node, error, "request") ||
        !GetInt(r, "terminal_node", &terminal_node, error, "request")) {
      return false;
    }
    const JsonValue* cold = r.Find("cold");
    if (cold == nullptr || !cold->is_bool()) {
      *error = "request: missing bool \"cold\"";
      return false;
    }
    if (id != static_cast<std::int64_t>(graph.requests_.size())) {
      *error = "request ids must be dense and in order";
      return false;
    }
    const auto num_nodes = static_cast<std::int64_t>(graph.nodes_.size());
    if (arrival_node < 0 || arrival_node >= num_nodes || terminal_node < -1 ||
        terminal_node >= num_nodes) {
      *error = "request " + std::to_string(id) + " references unknown nodes";
      return false;
    }
    req.id = static_cast<int>(id);
    req.process = static_cast<int>(process);
    req.instance = static_cast<int>(instance);
    req.cold = cold->AsBool();
    req.arrival = arrival;
    req.completion = completion;
    req.arrival_node = static_cast<CpNodeId>(arrival_node);
    req.terminal_node = static_cast<CpNodeId>(terminal_node);
    graph.requests_.push_back(req);
  }
  for (const CpNode& node : graph.nodes_) {
    if (node.request < 0 ||
        node.request >= static_cast<int>(graph.requests_.size())) {
      *error = "node " + std::to_string(node.id) + " references unknown request";
      return false;
    }
  }
  const JsonValue* edges = journal->Find("edges");
  if (edges == nullptr || !edges->is_array()) {
    *error = "missing \"edges\" array";
    return false;
  }
  for (const JsonValue& e : edges->items()) {
    if (!e.is_array() || e.items().size() != 2 || !e.items()[0].is_number() ||
        !e.items()[1].is_number()) {
      *error = "edge is not a [from, to] pair";
      return false;
    }
    const auto from = static_cast<std::int64_t>(e.items()[0].AsNumber());
    const auto to = static_cast<std::int64_t>(e.items()[1].AsNumber());
    const auto num_nodes = static_cast<std::int64_t>(graph.nodes_.size());
    if (from < 0 || from >= num_nodes || to < 0 || to >= num_nodes) {
      *error = "edge references unknown node";
      return false;
    }
    graph.edges_.emplace_back(static_cast<CpNodeId>(from),
                              static_cast<CpNodeId>(to));
  }
  *out = std::move(graph);
  return true;
}

bool CausalGraph::Assemble(std::vector<std::string> processes,
                           std::vector<CpRequest> requests,
                           std::vector<CpNode> nodes,
                           std::vector<std::pair<CpNodeId, CpNodeId>> edges,
                           CausalGraph* out, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  const auto num_nodes = static_cast<std::int64_t>(nodes.size());
  const auto num_requests = static_cast<std::int64_t>(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CpRequest& r = requests[i];
    if (r.id != static_cast<int>(i)) {
      *error = "request ids must be dense and in order";
      return false;
    }
    if (r.arrival_node < 0 || r.arrival_node >= num_nodes ||
        r.terminal_node < -1 || r.terminal_node >= num_nodes) {
      *error = "request " + std::to_string(r.id) + " references unknown nodes";
      return false;
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const CpNode& n = nodes[i];
    if (n.id != static_cast<CpNodeId>(i)) {
      *error = "node ids must be dense and in order";
      return false;
    }
    if (n.request < 0 || n.request >= num_requests) {
      *error = "node " + std::to_string(n.id) + " references unknown request";
      return false;
    }
    if (n.end < n.start) {
      *error = "node " + std::to_string(n.id) + " ends before it starts";
      return false;
    }
  }
  for (const auto& [from, to] : edges) {
    if (from < 0 || from >= num_nodes || to < 0 || to >= num_nodes) {
      *error = "edge references unknown node";
      return false;
    }
  }
  CausalGraph graph(/*enabled=*/true);
  graph.process_names_ = std::move(processes);
  graph.requests_ = std::move(requests);
  graph.nodes_ = std::move(nodes);
  graph.edges_ = std::move(edges);
  *out = std::move(graph);
  return true;
}

}  // namespace deepplan
