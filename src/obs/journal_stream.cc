#include "src/obs/journal_stream.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <tuple>

#include "src/obs/selfprof.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {

// Corruption guard: a frame claiming a payload larger than this is treated
// as damage rather than data (real chunks flush at ~1 MiB).
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

std::string Hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

void AppendU32Le(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t LoadU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

bool ReadExact(std::ifstream& in, char* out, std::size_t n,
               std::size_t* got = nullptr) {
  in.read(out, static_cast<std::streamsize>(n));
  const auto count = static_cast<std::size_t>(in.gcount());
  if (got != nullptr) {
    *got = count;
  }
  return count == n;
}

}  // namespace

void AppendVarint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void AppendZigzag(std::string* out, std::int64_t v) {
  AppendVarint(out, ZigzagEncode(v));
}

bool ReadVarint(std::string_view data, std::size_t* pos, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int i = 0; i < 10; ++i) {
    if (*pos >= data.size()) {
      return false;
    }
    const auto byte = static_cast<std::uint8_t>(data[*pos]);
    ++*pos;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;  // overlong encoding
}

bool ReadZigzag(std::string_view data, std::size_t* pos, std::int64_t* out) {
  std::uint64_t raw = 0;
  if (!ReadVarint(data, pos, &raw)) {
    return false;
  }
  *out = ZigzagDecode(raw);
  return true;
}

std::uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------- JournalWriter

JournalWriter::~JournalWriter() {
  Finish();  // no-op when never opened or already finished
}

bool JournalWriter::Open(const std::string& path,
                         const JournalWriterOptions& options,
                         MetricsRegistry* metrics) {
  MutexLock lock(mu_);
  DP_CHECK(!open_);
  DP_CHECK(options.chunk_requests > 0 && options.chunk_bytes > 0);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) {
    ok_ = false;
    error_ = "cannot open " + path + " for writing";
    return false;
  }
  options_ = options;
  metrics_ = metrics;
  std::string header(kJournalMagic, sizeof(kJournalMagic));
  AppendU32Le(&header, kJournalVersion);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  bytes_written_ = header.size();
  if (metrics_ != nullptr) {
    metrics_->AddCounter("journal.bytes",
                         static_cast<std::int64_t>(header.size()));
  }
  open_ = true;
  return static_cast<bool>(out_);
}

void JournalWriter::OnProcess(int id, const std::string& name) {
  MutexLock lock(mu_);
  DP_CHECK(open_ && !finished_);
  // Process ids are sequential registration order; the format stores only
  // names and reconstructs ids by position.
  DP_CHECK(id >= 0);
  pending_processes_.push_back(name);
}

std::uint64_t JournalWriter::Intern(const std::string& s) {
  const auto it = string_ids_.find(s);
  if (it != string_ids_.end()) {
    return it->second;
  }
  const std::uint64_t id = strings_.size();
  strings_.push_back(s);
  string_ids_.emplace(s, id);
  return id;
}

void JournalWriter::EncodeRecord(const CpRequestRecord& record) {
  std::string* b = &body_;
  const CpRequest& r = record.request;
  DP_CHECK(r.id >= 0);
  DP_CHECK(!record.nodes.empty());
  AppendZigzag(b, r.id);
  DP_CHECK(r.process >= 0);
  AppendVarint(b, static_cast<std::uint64_t>(r.process));
  AppendZigzag(b, r.instance);
  const bool completed = r.completion >= 0;
  const std::uint8_t flags = static_cast<std::uint8_t>((r.cold ? 1 : 0) |
                                                       (completed ? 2 : 0));
  b->push_back(static_cast<char>(flags));
  AppendZigzag(b, r.arrival);
  if (completed) {
    DP_CHECK(r.completion >= r.arrival);
    AppendVarint(b, static_cast<std::uint64_t>(r.completion - r.arrival));
  }
  AppendZigzag(b, r.arrival_node);
  AppendZigzag(b, r.terminal_node);

  AppendVarint(b, record.nodes.size());
  CpNodeId prev_id = 0;
  for (const CpNode& n : record.nodes) {
    AppendZigzag(b, static_cast<std::int64_t>(n.id) - prev_id);
    prev_id = n.id;
    b->push_back(static_cast<char>(static_cast<std::uint8_t>(n.kind)));
    AppendVarint(b, Intern(n.label));
    AppendVarint(b, Intern(n.resource));
    AppendZigzag(b, n.start - r.arrival);
    DP_CHECK(n.end >= n.start);
    AppendVarint(b, static_cast<std::uint64_t>(n.end - n.start));
    AppendZigzag(b, n.bytes);
    AppendZigzag(b, n.solo);
    DP_CHECK(n.dha_pcie >= 0);
    AppendVarint(b, static_cast<std::uint64_t>(n.dha_pcie));
    AppendVarint(b, n.path.size());
    for (const CpHop& hop : n.path) {
      AppendVarint(b, Intern(hop.link));
      // Raw IEEE-754 bits, so capacities round-trip exactly.
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(hop.capacity));
      std::memcpy(&bits, &hop.capacity, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        b->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
      }
    }
  }

  AppendVarint(b, record.edges.size());
  std::int64_t prev_seq = -1;
  const std::int64_t base = record.nodes.front().id;
  for (const CpEdgeRec& e : record.edges) {
    DP_CHECK(e.seq > prev_seq);
    AppendZigzag(b, e.seq - prev_seq);
    prev_seq = e.seq;
    AppendZigzag(b, static_cast<std::int64_t>(e.from) - base);
    AppendZigzag(b, static_cast<std::int64_t>(e.to) - base);
  }

  ++chunk_requests_;
  if (!completed) {
    ++chunk_incomplete_;
  }
  chunk_nodes_ += record.nodes.size();
  chunk_edges_ += record.edges.size();
}

void JournalWriter::OnRequestRetired(CpRequestRecord&& record) {
  MutexLock lock(mu_);
  DP_CHECK(open_ && !finished_);
  if (!ok_) {
    return;
  }
  EncodeRecord(record);
  if (chunk_requests_ >= options_.chunk_requests ||
      body_.size() >= options_.chunk_bytes) {
    FlushChunk();
  }
}

void JournalWriter::WriteFrame(std::uint8_t marker, const std::string& payload) {
  std::string head;
  head.push_back(static_cast<char>(marker));
  AppendVarint(&head, payload.size());
  AppendU32Le(&head, Crc32(payload));
  out_.write(head.data(), static_cast<std::streamsize>(head.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint64_t frame_bytes = head.size() + payload.size();
  bytes_written_ += frame_bytes;
  if (metrics_ != nullptr) {
    metrics_->AddCounter("journal.bytes",
                         static_cast<std::int64_t>(frame_bytes));
  }
  if (!out_) {
    ok_ = false;
    error_ = "journal write failed (disk full or file closed?)";
  }
}

void JournalWriter::FlushChunk() {
  if (pending_processes_.empty() && chunk_requests_ == 0) {
    return;
  }
  DP_SELFPROF_SCOPE(kJournalSerialize);
  std::string payload;
  AppendVarint(&payload, pending_processes_.size());
  for (const std::string& name : pending_processes_) {
    AppendVarint(&payload, name.size());
    payload += name;
  }
  AppendVarint(&payload, strings_.size());
  for (const std::string& s : strings_) {
    AppendVarint(&payload, s.size());
    payload += s;
  }
  AppendVarint(&payload, chunk_requests_);
  payload += body_;
  WriteFrame(kJournalChunkMarker, payload);

  ++totals_.chunks;
  totals_.requests += chunk_requests_;
  totals_.incomplete_requests += chunk_incomplete_;
  totals_.nodes += chunk_nodes_;
  totals_.edges += chunk_edges_;
  if (metrics_ != nullptr) {
    metrics_->AddCounter("journal.chunks");
    metrics_->AddCounter("journal.requests",
                         static_cast<std::int64_t>(chunk_requests_));
    if (chunk_incomplete_ > 0) {
      metrics_->AddCounter("journal.incomplete_requests",
                           static_cast<std::int64_t>(chunk_incomplete_));
    }
    metrics_->AddCounter("journal.nodes",
                         static_cast<std::int64_t>(chunk_nodes_));
    metrics_->AddCounter("journal.edges",
                         static_cast<std::int64_t>(chunk_edges_));
  }

  pending_processes_.clear();
  strings_.clear();
  string_ids_.clear();
  body_.clear();
  chunk_requests_ = 0;
  chunk_incomplete_ = 0;
  chunk_nodes_ = 0;
  chunk_edges_ = 0;
}

bool JournalWriter::Finish() {
  DP_SELFPROF_SCOPE(kJournalSerialize);
  MutexLock lock(mu_);
  if (!open_ || finished_) {
    return ok_;
  }
  FlushChunk();
  std::string footer;
  AppendVarint(&footer, totals_.requests);
  AppendVarint(&footer, totals_.incomplete_requests);
  AppendVarint(&footer, totals_.nodes);
  AppendVarint(&footer, totals_.edges);
  AppendVarint(&footer, totals_.chunks);
  WriteFrame(kJournalFooterMarker, footer);
  out_.close();
  if (!out_ && ok_) {
    ok_ = false;
    error_ = "journal close failed";
  }
  finished_ = true;
  return ok_;
}

// ------------------------------------------------------------- JournalReader

bool JournalReader::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = path_ + ": " + message;
  }
  return false;
}

bool JournalReader::Open(const std::string& path) {
  DP_CHECK(!open_);
  path_ = path;
  in_.open(path, std::ios::binary);
  if (!in_) {
    return Fail("cannot open file");
  }
  char header[8];
  std::size_t got = 0;
  if (!ReadExact(in_, header, sizeof(header), &got)) {
    return Fail("file too short to be a binary journal (" +
                std::to_string(got) +
                " bytes; an 8-byte DPJL header is required) — truncated file "
                "or not a journal");
  }
  if (std::memcmp(header, kJournalMagic, sizeof(kJournalMagic)) != 0) {
    if (header[0] == '{') {
      return Fail(
          "not a binary journal (content looks like JSON — lint it with "
          "trace_lint --profile/--whatif, or convert it with journal_convert "
          "--to-binary)");
    }
    return Fail("bad magic (want \"DPJL\"): not a DeepPlan binary journal");
  }
  const std::uint32_t version = LoadU32Le(header + 4);
  if (version != kJournalVersion) {
    return Fail("unsupported journal version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kJournalVersion) +
                ") — re-record or convert with a matching build");
  }
  offset_ = sizeof(header);
  open_ = true;
  return true;
}

bool JournalReader::ReadFrame(std::uint8_t* marker, std::string* payload,
                              bool* at_eof) {
  *at_eof = false;
  const int first = in_.get();
  if (first == std::char_traits<char>::eof()) {
    *at_eof = true;
    return false;
  }
  *marker = static_cast<std::uint8_t>(first);
  if (*marker != kJournalChunkMarker && *marker != kJournalFooterMarker) {
    char mbuf[5];
    std::snprintf(mbuf, sizeof(mbuf), "0x%02x", *marker);
    return Fail("unknown frame marker " + std::string(mbuf) + " at offset " +
                std::to_string(offset_) + ": corrupt journal");
  }
  std::uint64_t size = 0;
  bool size_done = false;
  std::uint64_t header_bytes = 1;
  for (int i = 0; i < 10; ++i) {
    const int b = in_.get();
    if (b == std::char_traits<char>::eof()) {
      return Fail("frame header truncated at offset " +
                  std::to_string(offset_) + " — the file was cut mid-write");
    }
    ++header_bytes;
    size |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) {
      size_done = true;
      break;
    }
  }
  if (!size_done || size > kMaxFramePayload) {
    return Fail("implausible frame size at offset " + std::to_string(offset_) +
                ": corrupt journal");
  }
  char crc_bytes[4];
  if (!ReadExact(in_, crc_bytes, sizeof(crc_bytes))) {
    return Fail("frame header truncated at offset " + std::to_string(offset_) +
                " — the file was cut mid-write");
  }
  header_bytes += 4;
  const std::uint32_t stored_crc = LoadU32Le(crc_bytes);
  payload->assign(size, '\0');
  std::size_t got = 0;
  if (size > 0 && !ReadExact(in_, payload->data(), size, &got)) {
    return Fail("frame at offset " + std::to_string(offset_) + " declares " +
                std::to_string(size) + " payload bytes but only " +
                std::to_string(got) +
                " remain — the file was truncated mid-write; frames before "
                "this offset are intact");
  }
  const std::uint32_t computed = Crc32(*payload);
  if (computed != stored_crc) {
    const char* what =
        *marker == kJournalFooterMarker ? "footer" : "chunk";
    return Fail(std::string(what) + " " +
                std::to_string(seen_.chunks + 1) + " CRC mismatch (stored " +
                Hex32(stored_crc) + ", computed " + Hex32(computed) +
                "): corrupt or bit-flipped frame at offset " +
                std::to_string(offset_));
  }
  offset_ += header_bytes + size;
  return true;
}

JournalReadStatus JournalReader::Next(JournalChunk* chunk) {
  if (!error_.empty()) {
    return JournalReadStatus::kError;
  }
  if (!open_) {
    Fail("reader is not open");
    return JournalReadStatus::kError;
  }
  if (footer_seen_) {
    return JournalReadStatus::kFooter;
  }
  std::uint8_t marker = 0;
  std::string payload;
  bool at_eof = false;
  if (!ReadFrame(&marker, &payload, &at_eof)) {
    if (at_eof) {
      Fail("journal ends without a footer after chunk " +
           std::to_string(seen_.chunks) +
           ": the recording was interrupted before Finish() — the " +
           std::to_string(seen_.chunks) +
           " chunk(s) present are intact but the journal is incomplete");
    }
    return JournalReadStatus::kError;
  }
  if (marker == kJournalFooterMarker) {
    std::string_view data(payload);
    std::size_t pos = 0;
    JournalTotals footer;
    if (!ReadVarint(data, &pos, &footer.requests) ||
        !ReadVarint(data, &pos, &footer.incomplete_requests) ||
        !ReadVarint(data, &pos, &footer.nodes) ||
        !ReadVarint(data, &pos, &footer.edges) ||
        !ReadVarint(data, &pos, &footer.chunks) || pos != data.size()) {
      Fail("malformed footer payload: corrupt journal");
      return JournalReadStatus::kError;
    }
    if (footer != seen_) {
      Fail("footer totals disagree with the chunks present (footer: " +
           std::to_string(footer.requests) + " requests / " +
           std::to_string(footer.nodes) + " nodes / " +
           std::to_string(footer.edges) + " edges in " +
           std::to_string(footer.chunks) + " chunks; file holds " +
           std::to_string(seen_.requests) + " / " +
           std::to_string(seen_.nodes) + " / " + std::to_string(seen_.edges) +
           " in " + std::to_string(seen_.chunks) +
           "): chunks were lost or spliced");
      return JournalReadStatus::kError;
    }
    if (in_.peek() != std::char_traits<char>::eof()) {
      Fail("trailing data after the journal footer: corrupt journal");
      return JournalReadStatus::kError;
    }
    totals_ = footer;
    footer_seen_ = true;
    return JournalReadStatus::kFooter;
  }
  std::string decode_error;
  chunk->new_processes.clear();
  chunk->requests.clear();
  if (!DecodeChunk(payload, process_count_, chunk, &decode_error)) {
    Fail("chunk " + std::to_string(seen_.chunks + 1) + ": " + decode_error);
    return JournalReadStatus::kError;
  }
  process_count_ += chunk->new_processes.size();
  ++seen_.chunks;
  for (const CpRequestRecord& rec : chunk->requests) {
    ++seen_.requests;
    if (rec.request.completion < 0) {
      ++seen_.incomplete_requests;
    }
    seen_.nodes += rec.nodes.size();
    seen_.edges += rec.edges.size();
  }
  return JournalReadStatus::kChunk;
}

bool JournalReader::ReadChunkAt(std::uint64_t offset,
                                std::uint64_t process_bound,
                                JournalChunk* chunk) {
  DP_CHECK(open_);
  error_.clear();
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  const std::uint64_t saved_offset = offset_;
  offset_ = offset;
  std::uint8_t marker = 0;
  std::string payload;
  bool at_eof = false;
  const bool frame_ok = ReadFrame(&marker, &payload, &at_eof);
  offset_ = saved_offset;
  if (!frame_ok) {
    if (at_eof) {
      Fail("no frame at offset " + std::to_string(offset));
    }
    return false;
  }
  if (marker != kJournalChunkMarker) {
    return Fail("frame at offset " + std::to_string(offset) +
                " is not a chunk");
  }
  chunk->new_processes.clear();
  chunk->requests.clear();
  std::string decode_error;
  if (!DecodeChunk(payload, process_bound, chunk, &decode_error)) {
    return Fail("chunk at offset " + std::to_string(offset) + ": " +
                decode_error);
  }
  return true;
}

bool JournalReader::DecodeChunk(const std::string& payload,
                                std::uint64_t process_bound,
                                JournalChunk* chunk,
                                std::string* error) const {
  const std::string_view data(payload);
  std::size_t pos = 0;
  const auto fail = [error](const std::string& what) {
    *error = what;
    return false;
  };
  const auto read_string = [&](std::string* out) {
    std::uint64_t len = 0;
    if (!ReadVarint(data, &pos, &len) || len > data.size() - pos) {
      return false;
    }
    out->assign(data.substr(pos, len));
    pos += len;
    return true;
  };

  std::uint64_t num_processes = 0;
  if (!ReadVarint(data, &pos, &num_processes)) {
    return fail("payload ends inside the process table");
  }
  for (std::uint64_t i = 0; i < num_processes; ++i) {
    std::string name;
    if (!read_string(&name)) {
      return fail("payload ends inside the process table");
    }
    chunk->new_processes.push_back(std::move(name));
  }
  const std::uint64_t total_processes =
      process_bound + chunk->new_processes.size();

  std::uint64_t num_strings = 0;
  if (!ReadVarint(data, &pos, &num_strings)) {
    return fail("payload ends inside the string table");
  }
  std::vector<std::string> strings;
  strings.reserve(num_strings);
  for (std::uint64_t i = 0; i < num_strings; ++i) {
    std::string s;
    if (!read_string(&s)) {
      return fail("payload ends inside the string table");
    }
    strings.push_back(std::move(s));
  }

  std::uint64_t num_requests = 0;
  if (!ReadVarint(data, &pos, &num_requests)) {
    return fail("payload ends before the request count");
  }
  chunk->requests.reserve(num_requests);
  for (std::uint64_t ri = 0; ri < num_requests; ++ri) {
    CpRequestRecord rec;
    CpRequest& r = rec.request;
    std::int64_t id = 0;
    if (!ReadZigzag(data, &pos, &id) || id < 0 ||
        id > std::numeric_limits<int>::max()) {
      return fail("record " + std::to_string(ri) + ": bad request id");
    }
    r.id = static_cast<int>(id);
    const std::string ctx = "request " + std::to_string(r.id);
    std::uint64_t process = 0;
    if (!ReadVarint(data, &pos, &process)) {
      return fail(ctx + ": truncated record");
    }
    if (process >= total_processes) {
      return fail(ctx + ": references process " + std::to_string(process) +
                  " but only " + std::to_string(total_processes) +
                  " are defined");
    }
    r.process = static_cast<int>(process);
    std::int64_t instance = 0;
    if (!ReadZigzag(data, &pos, &instance)) {
      return fail(ctx + ": truncated record");
    }
    r.instance = static_cast<int>(instance);
    if (pos >= data.size()) {
      return fail(ctx + ": truncated record");
    }
    const auto flags = static_cast<std::uint8_t>(data[pos]);
    ++pos;
    if ((flags & ~0x3) != 0) {
      return fail(ctx + ": unknown request flag bits");
    }
    r.cold = (flags & 1) != 0;
    if (!ReadZigzag(data, &pos, &r.arrival)) {
      return fail(ctx + ": truncated record");
    }
    if ((flags & 2) != 0) {
      std::uint64_t latency = 0;
      if (!ReadVarint(data, &pos, &latency)) {
        return fail(ctx + ": truncated record");
      }
      r.completion = r.arrival + static_cast<Nanos>(latency);
    } else {
      r.completion = -1;
    }
    std::int64_t arrival_node = 0, terminal_node = 0;
    if (!ReadZigzag(data, &pos, &arrival_node) ||
        !ReadZigzag(data, &pos, &terminal_node)) {
      return fail(ctx + ": truncated record");
    }

    std::uint64_t num_nodes = 0;
    if (!ReadVarint(data, &pos, &num_nodes)) {
      return fail(ctx + ": truncated record");
    }
    if (num_nodes == 0) {
      return fail(ctx + ": has no nodes (every request roots at an arrival)");
    }
    rec.nodes.reserve(num_nodes);
    std::int64_t prev_id = 0;
    for (std::uint64_t ni = 0; ni < num_nodes; ++ni) {
      CpNode n;
      n.request = r.id;
      std::int64_t delta = 0;
      if (!ReadZigzag(data, &pos, &delta)) {
        return fail(ctx + ": truncated node");
      }
      const std::int64_t node_id = prev_id + delta;
      if (node_id < 0 || node_id > std::numeric_limits<CpNodeId>::max() ||
          (ni > 0 && node_id <= prev_id)) {
        return fail(ctx + ": node ids are not strictly increasing");
      }
      prev_id = node_id;
      n.id = static_cast<CpNodeId>(node_id);
      if (pos >= data.size()) {
        return fail(ctx + ": truncated node");
      }
      const auto kind = static_cast<std::uint8_t>(data[pos]);
      ++pos;
      if (kind > static_cast<std::uint8_t>(CpKind::kExec)) {
        return fail(ctx + ": node " + std::to_string(node_id) +
                    " has unknown kind " + std::to_string(kind));
      }
      n.kind = static_cast<CpKind>(kind);
      std::uint64_t label_idx = 0, resource_idx = 0;
      if (!ReadVarint(data, &pos, &label_idx) ||
          !ReadVarint(data, &pos, &resource_idx)) {
        return fail(ctx + ": truncated node");
      }
      if (label_idx >= strings.size() || resource_idx >= strings.size()) {
        return fail(ctx + ": node " + std::to_string(node_id) +
                    " references a string outside the chunk string table");
      }
      n.label = strings[label_idx];
      n.resource = strings[resource_idx];
      std::int64_t start_delta = 0;
      std::uint64_t duration = 0;
      if (!ReadZigzag(data, &pos, &start_delta) ||
          !ReadVarint(data, &pos, &duration)) {
        return fail(ctx + ": truncated node");
      }
      n.start = r.arrival + start_delta;
      n.end = n.start + static_cast<Nanos>(duration);
      std::uint64_t dha = 0;
      if (!ReadZigzag(data, &pos, &n.bytes) ||
          !ReadZigzag(data, &pos, &n.solo) ||
          !ReadVarint(data, &pos, &dha)) {
        return fail(ctx + ": truncated node");
      }
      if (n.solo < -1) {
        return fail(ctx + ": node " + std::to_string(node_id) +
                    " has solo < -1");
      }
      n.dha_pcie = static_cast<Nanos>(dha);
      std::uint64_t num_hops = 0;
      if (!ReadVarint(data, &pos, &num_hops)) {
        return fail(ctx + ": truncated node");
      }
      n.path.reserve(num_hops);
      for (std::uint64_t hi = 0; hi < num_hops; ++hi) {
        CpHop hop;
        std::uint64_t link_idx = 0;
        if (!ReadVarint(data, &pos, &link_idx)) {
          return fail(ctx + ": truncated hop");
        }
        if (link_idx >= strings.size()) {
          return fail(ctx + ": hop references a string outside the chunk "
                            "string table");
        }
        hop.link = strings[link_idx];
        if (data.size() - pos < 8) {
          return fail(ctx + ": truncated hop");
        }
        std::uint64_t bits = 0;
        for (int bi = 7; bi >= 0; --bi) {
          bits = (bits << 8) |
                 static_cast<std::uint8_t>(data[pos + static_cast<std::size_t>(bi)]);
        }
        pos += 8;
        std::memcpy(&hop.capacity, &bits, sizeof(hop.capacity));
        if (!std::isfinite(hop.capacity) || hop.capacity <= 0.0) {
          return fail(ctx + ": hop \"" + hop.link +
                      "\" capacity must be a positive finite number");
        }
        n.path.push_back(std::move(hop));
      }
      rec.nodes.push_back(std::move(n));
    }

    const auto is_member = [&rec](std::int64_t node_id) {
      const auto it = std::lower_bound(
          rec.nodes.begin(), rec.nodes.end(), node_id,
          [](const CpNode& n, std::int64_t v) { return n.id < v; });
      return it != rec.nodes.end() && it->id == node_id;
    };
    if (!is_member(arrival_node)) {
      return fail(ctx + ": arrival_node " + std::to_string(arrival_node) +
                  " is not a node of the request");
    }
    if (terminal_node != -1 && !is_member(terminal_node)) {
      return fail(ctx + ": terminal_node " + std::to_string(terminal_node) +
                  " is not a node of the request");
    }
    r.arrival_node = static_cast<CpNodeId>(arrival_node);
    r.terminal_node = static_cast<CpNodeId>(terminal_node);

    std::uint64_t num_edges = 0;
    if (!ReadVarint(data, &pos, &num_edges)) {
      return fail(ctx + ": truncated record");
    }
    rec.edges.reserve(num_edges);
    std::int64_t prev_seq = -1;
    const std::int64_t base = rec.nodes.front().id;
    for (std::uint64_t ei = 0; ei < num_edges; ++ei) {
      std::int64_t seq_delta = 0, from_delta = 0, to_delta = 0;
      if (!ReadZigzag(data, &pos, &seq_delta) ||
          !ReadZigzag(data, &pos, &from_delta) ||
          !ReadZigzag(data, &pos, &to_delta)) {
        return fail(ctx + ": truncated edge");
      }
      const std::int64_t seq = prev_seq + seq_delta;
      if (seq <= prev_seq || seq < 0) {
        return fail(ctx + ": edge seqs are not strictly increasing");
      }
      prev_seq = seq;
      const std::int64_t from = base + from_delta;
      const std::int64_t to = base + to_delta;
      if (!is_member(from) || !is_member(to)) {
        const std::int64_t dangling = is_member(from) ? to : from;
        return fail(ctx + ": edge (" + std::to_string(from) + " -> " +
                    std::to_string(to) + ") is dangling — node " +
                    std::to_string(dangling) +
                    " is not a node of this request (corrupt journal or "
                    "writer bug)");
      }
      rec.edges.push_back(CpEdgeRec{seq, static_cast<CpNodeId>(from),
                                    static_cast<CpNodeId>(to)});
    }
    chunk->requests.push_back(std::move(rec));
  }
  if (pos != data.size()) {
    return fail("chunk has " + std::to_string(data.size() - pos) +
                " trailing byte(s) after the last record");
  }
  return true;
}

// ---------------------------------------------------------------- converters

bool IsBinaryJournalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[4];
  return ReadExact(in, magic, sizeof(magic)) &&
         std::memcmp(magic, kJournalMagic, sizeof(magic)) == 0;
}

bool ReadJournalToGraph(const std::string& path, CausalGraph* out,
                        std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  JournalReader reader;
  if (!reader.Open(path)) {
    *error = reader.error();
    return false;
  }
  std::vector<std::string> processes;
  std::vector<CpRequest> requests;
  std::vector<CpNode> nodes;
  std::vector<std::tuple<std::int64_t, CpNodeId, CpNodeId>> seq_edges;
  for (;;) {
    JournalChunk chunk;
    const JournalReadStatus status = reader.Next(&chunk);
    if (status == JournalReadStatus::kError) {
      *error = reader.error();
      return false;
    }
    if (status == JournalReadStatus::kFooter) {
      break;
    }
    for (std::string& name : chunk.new_processes) {
      processes.push_back(std::move(name));
    }
    for (CpRequestRecord& rec : chunk.requests) {
      requests.push_back(rec.request);
      for (CpNode& n : rec.nodes) {
        nodes.push_back(std::move(n));
      }
      for (const CpEdgeRec& e : rec.edges) {
        seq_edges.emplace_back(e.seq, e.from, e.to);
      }
    }
  }
  // Requests retire in completion order; node ids and edge seqs are global
  // append order. Sorting by id/seq reconstructs the exact in-memory layout,
  // which is what makes the JSON export byte-identical.
  std::sort(requests.begin(), requests.end(),
            [](const CpRequest& a, const CpRequest& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].id != static_cast<int>(i)) {
      *error = path + ": journal request ids are not dense (duplicate or "
                      "missing request " +
               std::to_string(i) + ")";
      return false;
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const CpNode& a, const CpNode& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id != static_cast<CpNodeId>(i)) {
      *error = path + ": journal node ids are not dense (duplicate or "
                      "missing node " +
               std::to_string(i) + ")";
      return false;
    }
  }
  std::sort(seq_edges.begin(), seq_edges.end());
  std::vector<std::pair<CpNodeId, CpNodeId>> edges;
  edges.reserve(seq_edges.size());
  std::int64_t prev_seq = -1;
  for (const auto& [seq, from, to] : seq_edges) {
    if (seq <= prev_seq) {
      *error = path + ": duplicate edge sequence number " +
               std::to_string(seq);
      return false;
    }
    prev_seq = seq;
    edges.emplace_back(from, to);
  }
  if (!CausalGraph::Assemble(std::move(processes), std::move(requests),
                             std::move(nodes), std::move(edges), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool WriteGraphToJournal(const CausalGraph& graph, const std::string& path,
                         const JournalWriterOptions& options,
                         MetricsRegistry* metrics, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  DP_CHECK(!graph.streaming());
  const auto& requests = graph.requests();
  const auto& nodes = graph.nodes();
  std::vector<std::vector<std::size_t>> req_nodes(requests.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int r = nodes[i].request;
    if (r < 0 || r >= static_cast<int>(requests.size())) {
      *error = "node " + std::to_string(nodes[i].id) +
               " references unknown request " + std::to_string(r);
      return false;
    }
    req_nodes[static_cast<std::size_t>(r)].push_back(i);
  }
  std::vector<std::vector<CpEdgeRec>> req_edges(requests.size());
  const auto& edges = graph.edges();
  for (std::size_t seq = 0; seq < edges.size(); ++seq) {
    const auto [from, to] = edges[seq];
    const int owner = nodes[static_cast<std::size_t>(from)].request;
    if (nodes[static_cast<std::size_t>(to)].request != owner || owner < 0) {
      *error = "edge (" + std::to_string(from) + " -> " + std::to_string(to) +
               ") crosses requests; the chunked journal format requires "
               "intra-request edges";
      return false;
    }
    req_edges[static_cast<std::size_t>(owner)].push_back(
        CpEdgeRec{static_cast<std::int64_t>(seq), from, to});
  }
  JournalWriter writer;
  if (!writer.Open(path, options, metrics)) {
    *error = writer.error();
    return false;
  }
  const auto& processes = graph.processes();
  for (std::size_t p = 0; p < processes.size(); ++p) {
    writer.OnProcess(static_cast<int>(p), processes[p]);
  }
  for (const CpRequest& r : requests) {
    CpRequestRecord record;
    record.request = r;
    const auto ri = static_cast<std::size_t>(r.id);
    record.nodes.reserve(req_nodes[ri].size());
    for (const std::size_t ni : req_nodes[ri]) {
      record.nodes.push_back(nodes[ni]);
    }
    record.edges = std::move(req_edges[ri]);
    writer.OnRequestRetired(std::move(record));
  }
  if (!writer.Finish()) {
    *error = writer.error();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------- lint

check::TraceLintResult LintJournalFile(const std::string& path,
                                       JournalLintInfo* info,
                                       const check::TraceLintOptions& options) {
  check::TraceLintResult result;
  const auto add_error = [&result, &options](const std::string& message) {
    ++result.num_errors;
    if (result.errors.size() < options.max_reported_errors) {
      result.errors.push_back(message);
    }
  };
  JournalReader reader;
  if (!reader.Open(path)) {
    add_error(reader.error());
    return result;
  }
  for (;;) {
    JournalChunk chunk;
    const JournalReadStatus status = reader.Next(&chunk);
    if (status == JournalReadStatus::kError) {
      add_error(reader.error());
      break;
    }
    if (status == JournalReadStatus::kFooter) {
      break;
    }
    result.num_events += chunk.requests.size();
  }
  if (info != nullptr) {
    info->totals = reader.footer_seen() ? reader.totals() : JournalTotals{};
    info->processes = reader.num_processes();
  }
  return result;
}

}  // namespace deepplan
