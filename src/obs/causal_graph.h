// Causal journal of a simulated run: an explicit happens-before DAG per
// request, recorded at the same chokepoints the runtime validator already
// hooks — queue pop (dispatch), stream op chaining, sync-event fire, and
// fabric transfer completion. Where the TraceRecorder captures *what happened
// when* for a human in Perfetto, the CausalGraph captures *what waited on
// what*, which is the input the critical-path engine (src/obs/critical_path)
// needs to attribute every nanosecond of a request's latency to a cause.
//
// Node timestamps are absolute simulation time. Transfer nodes additionally
// carry `solo_ns`, the duration the same transfer would have taken alone on
// its path (min link capacity, same ceil-to-ns rounding and latency tail the
// fabric applies); the critical-path engine turns the excess over solo into
// the PCIe-contention component.
//
// Cost model mirrors TraceRecorder: components hold a `CausalGraph*` that is
// nullptr when profiling is off, and a graph constructed disabled drops every
// call without touching its buffers, so the disabled hot path stays a pointer
// test and simulation behaviour is bit-for-bit unchanged either way.
//
// Determinism: the simulator is single-threaded, so nodes append in
// simulation order; parallel sweeps build one graph per task and stitch them
// with Adopt() in task order, making the exported journal byte-identical for
// any DEEPPLAN_JOBS value.
// Streaming mode: AttachSink() switches an enabled graph from accumulation
// to retirement — every call is buffered only per open request, and
// EndRequest hands the request's nodes/edges to a CausalSink (the binary
// JournalWriter, src/obs/journal_stream.h) and reclaims them. Memory is then
// bounded by in-flight requests instead of journal length, which is what
// lets the 1M-request scaling point record a journal at all. Streaming
// relies on the recorder invariant that every edge is intra-request (engine
// and server only ever chain nodes of the same request; DP_CHECKed), so a
// retired request is a self-contained record.
#ifndef SRC_OBS_CAUSAL_GRAPH_H_
#define SRC_OBS_CAUSAL_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/thread_annotations.h"
#include "src/util/time.h"

namespace deepplan {

using CpNodeId = std::int32_t;

enum class CpKind {
  kArrival,  // request root: zero-duration point at arrival time
  kEvict,    // LRU teardown making room for a cold start
  kPcie,     // host->GPU transfer over a PCIe lane
  kNvlink,   // GPU->GPU migration over an NVLink
  kExec,     // layer execution (or a whole warm inference) on a GPU
};

// Canonical lowercase name ("arrival", "evict", "pcie", "nvlink", "exec").
const char* CpKindName(CpKind kind);

// One fabric link a transfer crossed, with its configured capacity. The
// what-if replay engine (src/obs/whatif) rebuilds the fabric from these hops,
// so per-link overlap — and therefore contention — can be re-derived under
// perturbed link speeds. Hops are identified by name ("uplink/sw0",
// "pcie/gpu1", "nvlink/0-1"), which needs no remapping under Adopt().
struct CpHop {
  std::string link;
  double capacity = 0.0;  // bytes/second

  bool operator==(const CpHop&) const = default;
};

struct CpNode {
  CpNodeId id = -1;
  int request = -1;
  CpKind kind = CpKind::kExec;
  std::string label;     // e.g. "load encoder.3.attn", "exec(DHA) pooler"
  std::string resource;  // e.g. "pcie/gpu0", "nvlink/1->0", "gpu0"
  Nanos start = 0;
  Nanos end = 0;
  std::int64_t bytes = 0;  // transfers only
  Nanos solo = -1;         // transfers: contention-free duration; -1 = n/a
  // Transfers: the links crossed, in route order (empty when not recorded).
  std::vector<CpHop> path;
  // Exec nodes: the slice of the duration spent streaming parameters over
  // PCIe (direct-host-access), which scales inversely with PCIe bandwidth
  // while the rest of the node does not. 0 for non-DHA work.
  Nanos dha_pcie = 0;
};

struct CpRequest {
  int id = -1;
  int process = 0;  // index into processes() (strategy / replay the request
                    // belongs to; utilization never mixes processes)
  int instance = -1;
  bool cold = false;
  Nanos arrival = 0;
  Nanos completion = -1;          // -1 until EndRequest
  CpNodeId arrival_node = -1;
  CpNodeId terminal_node = -1;    // last node before completion
};

// One happens-before edge with its global append-order sequence number.
// ToJson() emits edges interleaved across requests in AddEdge order; `seq`
// preserves that order through per-request chunking so a journal written in
// retirement order still exports byte-identical JSON.
struct CpEdgeRec {
  std::int64_t seq = -1;
  CpNodeId from = -1;
  CpNodeId to = -1;
};

// A retired request with everything recorded for it: the self-contained unit
// the streaming journal writer chunks. Nodes are in id (= append) order and
// edges in seq order; node and edge ids stay global.
struct CpRequestRecord {
  CpRequest request;
  std::vector<CpNode> nodes;
  std::vector<CpEdgeRec> edges;
};

// Receives retired requests from a streaming CausalGraph (and process
// registrations, which always precede the first request that uses them).
class CausalSink {
 public:
  virtual ~CausalSink() = default;
  virtual void OnProcess(int id, const std::string& name) = 0;
  virtual void OnRequestRetired(CpRequestRecord&& record) = 0;
};

class CausalGraph {
 public:
  CausalGraph() = default;
  explicit CausalGraph(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  // Names a process group (one per strategy/replay). Returns the process id
  // to tag requests with. Disabled graphs return 0 without allocating.
  int RegisterProcess(std::string_view name);

  // Opens a request rooted at a zero-duration arrival node. Returns the
  // request id (-1 when disabled).
  int BeginRequest(int process, int instance, Nanos arrival);

  // Records one unit of causally-ordered work. Returns the node id (-1 when
  // disabled or `request` is -1).
  CpNodeId AddNode(int request, CpKind kind, std::string label,
                   std::string resource, Nanos start, Nanos end,
                   std::int64_t bytes = 0, Nanos solo = -1);

  // Attaches the fabric route a transfer node crossed (link names +
  // capacities). No-op when disabled or `node` is -1.
  void SetNodePath(CpNodeId node, std::vector<CpHop> path);

  // Records the PCIe-bandwidth-dependent share of an exec node's duration
  // (direct-host-access parameter streaming). No-op when disabled or -1.
  void SetNodeDhaPcie(CpNodeId node, Nanos dha_pcie);

  // Happens-before edge `from` -> `to`. Ignores -1 endpoints so call sites
  // can thread "previous node" cursors without branching.
  void AddEdge(CpNodeId from, CpNodeId to);

  // Flags a request as a cold start (known at dispatch, not at arrival).
  void MarkCold(int request);

  // Closes a request: `terminal` is the node whose completion finished it.
  void EndRequest(int request, Nanos completion, CpNodeId terminal);

  CpNodeId arrival_node(int request) const;

  const std::vector<std::string>& processes() const { return process_names_; }
  const std::vector<CpRequest>& requests() const { return requests_; }
  const std::vector<CpNode>& nodes() const { return nodes_; }
  const std::vector<std::pair<CpNodeId, CpNodeId>>& edges() const {
    return edges_;
  }
  bool empty() const { return requests_.empty(); }

  // Switches this (enabled, still-empty) graph into streaming mode: each
  // EndRequest retires the request's record to `sink` and frees it. The
  // accessor surface (nodes()/edges()/requests()) stays empty and
  // Adopt()/ToJson() become invalid — a streaming run's journal lives in the
  // sink, not the graph. `sink` must outlive the graph's last mutation.
  void AttachSink(CausalSink* sink);
  bool streaming() const { return stream_ != nullptr; }

  // Streaming only: retires every still-open request (completion -1) to the
  // sink in request-id order, so an interrupted or tail-truncated run still
  // journals deterministically. Call once after the simulation drains.
  void FlushOpenRequests();

  // Merges `other` into this graph, remapping its processes, requests, and
  // node ids past the ones already present (stitches per-task graphs from a
  // parallel sweep, in deterministic task order).
  void Adopt(CausalGraph&& other);

  // {"causal_journal":{"processes":[...],"requests":[...],"nodes":[...],
  //  "edges":[[from,to],...]}} — deterministic bytes for a given graph.
  std::string ToJson() const;
  bool WriteTo(const std::string& path) const;

  // Parses a journal produced by ToJson(). Returns false and sets `error`
  // on malformed input (bad structure, dangling node/request references).
  static bool FromJson(const std::string& text, CausalGraph* out,
                       std::string* error);

  // Reassembles a graph from complete, id-ordered parts — the binary journal
  // reader's materialization path (src/obs/journal_stream.h). Requests and
  // nodes must already be dense and sorted by id; cross-references are
  // validated the same way FromJson validates them.
  static bool Assemble(std::vector<std::string> processes,
                       std::vector<CpRequest> requests,
                       std::vector<CpNode> nodes,
                       std::vector<std::pair<CpNodeId, CpNodeId>> edges,
                       CausalGraph* out, std::string* error);

 private:
  // Streaming mode: open requests keyed by id (ordered, so FlushOpenRequests
  // retires deterministically) plus a live-node index for the node-addressed
  // mutators. Both shrink as requests retire — this is the bounded-memory
  // state, and it is the one part of the graph that is internally
  // synchronized: retirement is the PDES hand-off point, so every field is
  // GUARDED_BY the state's own mutex and helpers that expect it held are
  // REQUIRES-annotated. The state lives behind a unique_ptr so the graph
  // stays implicitly movable (Adopt, FromJson, Assemble all move-assign)
  // despite owning a Mutex. Lock order: stream_->mu before the sink's
  // internal lock (RetireLive calls the sink while holding mu), never the
  // reverse — the sink never calls back into the graph.
  struct StreamState {
    explicit StreamState(CausalSink* s) : sink(s) {}

    CausalSink* const sink;
    Mutex mu;
    std::int64_t next_request GUARDED_BY(mu) = 0;
    std::int64_t next_node GUARDED_BY(mu) = 0;
    std::int64_t next_edge GUARDED_BY(mu) = 0;
    std::map<int, CpRequestRecord> live GUARDED_BY(mu);
    std::unordered_map<CpNodeId, int> live_node_owner GUARDED_BY(mu);
  };

  CpNodeId AddNodeLocked(int request, CpKind kind, std::string label,
                         std::string resource, Nanos start, Nanos end,
                         std::int64_t bytes, Nanos solo)
      REQUIRES(stream_->mu);
  CpNode* LiveNode(CpNodeId node) REQUIRES(stream_->mu);
  void RetireLive(std::map<int, CpRequestRecord>::iterator it)
      REQUIRES(stream_->mu);

  bool enabled_ = true;
  // Accumulation surface: thread-confined (one graph per sweep task, stitched
  // deterministically with Adopt in task order) — deliberately NOT locked,
  // because append order here is part of the byte-identical-output contract.
  std::vector<std::string> process_names_;
  std::vector<CpRequest> requests_;
  std::vector<CpNode> nodes_;
  std::vector<std::pair<CpNodeId, CpNodeId>> edges_;

  std::unique_ptr<StreamState> stream_;  // non-null iff streaming()
};

}  // namespace deepplan

#endif  // SRC_OBS_CAUSAL_GRAPH_H_
