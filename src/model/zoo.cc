#include "src/model/zoo.h"

#include <utility>

#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

namespace {

// Appends one pre-norm/post-norm agnostic transformer block: QKV + attention +
// output projection + LayerNorm + FFN + LayerNorm. `blk` is used for names.
void AppendTransformerBlock(std::vector<Layer>* layers, int blk, std::int64_t hidden,
                            std::int64_t ffn, std::int64_t seq) {
  const std::string p = "block" + std::to_string(blk) + ".";
  layers->push_back(Layer::Linear(p + "attn.q", hidden, hidden, seq));
  layers->push_back(Layer::Linear(p + "attn.k", hidden, hidden, seq));
  layers->push_back(Layer::Linear(p + "attn.v", hidden, hidden, seq));
  layers->push_back(Layer::Attention(p + "attn.scores", seq, hidden));
  layers->push_back(Layer::Linear(p + "attn.out", hidden, hidden, seq));
  layers->push_back(Layer::Residual(p + "attn.residual", seq * hidden));
  layers->push_back(Layer::LayerNorm(p + "attn.ln", hidden, seq));
  layers->push_back(Layer::Linear(p + "ffn.fc1", hidden, ffn, seq));
  layers->push_back(Layer::Activation(p + "ffn.gelu", seq * ffn));
  layers->push_back(Layer::Linear(p + "ffn.fc2", ffn, hidden, seq));
  layers->push_back(Layer::Residual(p + "ffn.residual", seq * hidden));
  layers->push_back(Layer::LayerNorm(p + "ffn.ln", hidden, seq));
}

// Appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand). The first
// block of a stage may downsample (stride 2) and carries a projection conv on
// the shortcut.
void AppendBottleneck(std::vector<Layer>* layers, const std::string& p,
                      std::int64_t c_in, std::int64_t width, std::int64_t h,
                      std::int64_t w, bool downsample) {
  const std::int64_t c_out = width * 4;
  const std::int64_t stride = downsample && c_in != width * 4 && c_in != 64 ? 2 : 1;
  const std::int64_t ho = downsample && stride == 2 ? h / 2 : h;
  const std::int64_t wo = downsample && stride == 2 ? w / 2 : w;
  layers->push_back(Layer::Conv2d(p + "conv1", c_in, width, 1, ho, wo, stride));
  layers->push_back(Layer::BatchNorm(p + "bn1", width, ho * wo));
  layers->push_back(Layer::Activation(p + "relu1", width * ho * wo));
  layers->push_back(Layer::Conv2d(p + "conv2", width, width, 3, ho, wo));
  layers->push_back(Layer::BatchNorm(p + "bn2", width, ho * wo));
  layers->push_back(Layer::Activation(p + "relu2", width * ho * wo));
  layers->push_back(Layer::Conv2d(p + "conv3", width, c_out, 1, ho, wo));
  layers->push_back(Layer::BatchNorm(p + "bn3", c_out, ho * wo));
  if (downsample) {
    layers->push_back(Layer::Conv2d(p + "downsample", c_in, c_out, 1, ho, wo, stride));
    layers->push_back(Layer::BatchNorm(p + "downsample.bn", c_out, ho * wo));
  }
  layers->push_back(Layer::Residual(p + "residual", c_out * ho * wo));
  layers->push_back(Layer::Activation(p + "relu3", c_out * ho * wo));
}

}  // namespace

Model ModelZoo::TransformerEncoder(std::string name, std::int64_t vocab,
                                   std::int64_t hidden, std::int64_t num_layers,
                                   std::int64_t ffn, std::int64_t seq) {
  std::vector<Layer> layers;
  layers.push_back(Layer::Embedding("emb.word", vocab, hidden, seq));
  layers.push_back(Layer::Embedding("emb.position", 512, hidden, seq));
  layers.push_back(Layer::Embedding("emb.token_type", 2, hidden, seq));
  layers.push_back(Layer::LayerNorm("emb.ln", hidden, seq));
  for (int b = 0; b < num_layers; ++b) {
    AppendTransformerBlock(&layers, b, hidden, ffn, seq);
  }
  layers.push_back(Layer::Linear("pooler", hidden, hidden, 1));
  return Model(std::move(name), std::move(layers), seq);
}

Model ModelZoo::TransformerDecoder(std::string name, std::int64_t vocab,
                                   std::int64_t hidden, std::int64_t num_layers,
                                   std::int64_t seq) {
  std::vector<Layer> layers;
  layers.push_back(Layer::Embedding("emb.word", vocab, hidden, seq));
  layers.push_back(Layer::Embedding("emb.position", 1024, hidden, seq));
  for (int b = 0; b < num_layers; ++b) {
    AppendTransformerBlock(&layers, b, hidden, 4 * hidden, seq);
  }
  layers.push_back(Layer::LayerNorm("final.ln", hidden, seq));
  // GPT-2's LM head ties the embedding weights: compute-only here.
  layers.push_back(Layer::Attention("lm_head.tied", 1, hidden));
  return Model(std::move(name), std::move(layers), seq);
}

Model ModelZoo::ResNet(std::string name, const std::vector<int>& blocks_per_stage) {
  DP_CHECK(blocks_per_stage.size() == 4);
  std::vector<Layer> layers;
  layers.push_back(Layer::Conv2d("stem.conv", 3, 64, 7, 112, 112, 2));
  layers.push_back(Layer::BatchNorm("stem.bn", 64, 112 * 112));
  layers.push_back(Layer::Activation("stem.relu", 64 * 112 * 112));
  layers.push_back(Layer::Pooling("stem.maxpool", 64 * 56 * 56));
  const std::int64_t widths[4] = {64, 128, 256, 512};
  std::int64_t h = 56;
  std::int64_t w = 56;
  std::int64_t c_in = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t width = widths[stage];
    for (int blk = 0; blk < blocks_per_stage[Idx(stage)]; ++blk) {
      const std::string p =
          "stage" + std::to_string(stage + 1) + ".block" + std::to_string(blk) + ".";
      const bool first = blk == 0;
      const bool spatial_down = first && stage > 0;
      AppendBottleneck(&layers, p, c_in, width, h, w, first);
      if (spatial_down) {
        h /= 2;
        w /= 2;
      }
      c_in = width * 4;
    }
  }
  layers.push_back(Layer::Pooling("avgpool", 2048 * 7 * 7));
  layers.push_back(Layer::Linear("fc", 2048, 1000, 1));
  return Model(std::move(name), std::move(layers), /*ref_tokens=*/1);
}

Model ModelZoo::ResNet50() { return ResNet("resnet50", {3, 4, 6, 3}); }
Model ModelZoo::ResNet101() { return ResNet("resnet101", {3, 4, 23, 3}); }

Model ModelZoo::BertBase() {
  return TransformerEncoder("bert_base", 30522, 768, 12, 3072, 384);
}
Model ModelZoo::BertLarge() {
  return TransformerEncoder("bert_large", 30522, 1024, 24, 4096, 384);
}
Model ModelZoo::RobertaBase() {
  return TransformerEncoder("roberta_base", 50265, 768, 12, 3072, 384);
}
Model ModelZoo::RobertaLarge() {
  return TransformerEncoder("roberta_large", 50265, 1024, 24, 4096, 384);
}
Model ModelZoo::Gpt2() { return TransformerDecoder("gpt2", 50257, 768, 12, 1024); }
Model ModelZoo::Gpt2Medium() {
  return TransformerDecoder("gpt2_medium", 50257, 1024, 24, 1024);
}

std::vector<Model> ModelZoo::PaperModels() {
  return {ResNet50(),    ResNet101(),    BertBase(), BertLarge(),
          RobertaBase(), RobertaLarge(), Gpt2(),     Gpt2Medium()};
}

std::vector<std::string> ModelZoo::Names() {
  return {"resnet50",     "resnet101",     "bert_base", "bert_large",
          "roberta_base", "roberta_large", "gpt2",      "gpt2_medium"};
}

Model ModelZoo::ByName(const std::string& name) {
  for (Model& m : PaperModels()) {
    if (m.name() == name) {
      return std::move(m);
    }
  }
  if (name == "moe_sparse") {
    return MoeSparse("moe_sparse", 768, 12, 8, 384);
  }
  if (name == "oversized") {
    return Oversized("oversized");
  }
  DP_CHECK(false && "unknown model name");
  return Model();
}

Model ModelZoo::MoeSparse(std::string name, std::int64_t hidden, std::int64_t num_layers,
                          std::int64_t experts_per_layer, std::int64_t seq) {
  std::vector<Layer> layers;
  layers.push_back(Layer::Embedding("emb.word", 30522, hidden, seq));
  layers.push_back(Layer::Embedding("emb.position", 512, hidden, seq));
  layers.push_back(Layer::LayerNorm("emb.ln", hidden, seq));
  for (int b = 0; b < num_layers; ++b) {
    const std::string p = "block" + std::to_string(b) + ".";
    layers.push_back(Layer::Linear(p + "attn.q", hidden, hidden, seq));
    layers.push_back(Layer::Linear(p + "attn.k", hidden, hidden, seq));
    layers.push_back(Layer::Linear(p + "attn.v", hidden, hidden, seq));
    layers.push_back(Layer::Attention(p + "attn.scores", seq, hidden));
    layers.push_back(Layer::Linear(p + "attn.out", hidden, hidden, seq));
    layers.push_back(Layer::LayerNorm(p + "attn.ln", hidden, seq));
    layers.push_back(Layer::Linear(p + "router", hidden, experts_per_layer, seq));
    // One active expert computes; the inactive experts' parameters still
    // belong to the model (provisioning burden without compute).
    for (int e = 0; e < experts_per_layer; ++e) {
      const bool active = e == 0;
      Layer fc1 = Layer::Linear(p + "expert" + std::to_string(e) + ".fc1", hidden,
                                4 * hidden, active ? seq : 1);
      Layer fc2 = Layer::Linear(p + "expert" + std::to_string(e) + ".fc2", 4 * hidden,
                                hidden, active ? seq : 1);
      if (!active) {
        fc1.flops = 0;
        fc1.act_bytes = 0;
        fc1.dha_param_traffic_bytes = 0;
        fc2.flops = 0;
        fc2.act_bytes = 0;
        fc2.dha_param_traffic_bytes = 0;
      }
      layers.push_back(std::move(fc1));
      layers.push_back(std::move(fc2));
    }
    layers.push_back(Layer::LayerNorm(p + "ffn.ln", hidden, seq));
  }
  return Model(std::move(name), std::move(layers), seq);
}

Model ModelZoo::Oversized(std::string name) {
  // ~18.9 GiB of parameters: hidden 2560, 96 blocks — larger than one 16 GB
  // V100, exercising the Section 7 "model does not fit one GPU" scenario.
  return TransformerDecoder(std::move(name), 50257, 2560, 64, 1024);
}

}  // namespace deepplan
