// Text model descriptions: a small line-oriented format so users can define
// custom models for the planner/engine without recompiling (the zoo builders
// cover the paper's models; this covers everything else). Format:
//
//   model <name> tokens=<ref_tokens>
//   embedding <name> rows=<n> dim=<n>
//   linear    <name> in=<n> out=<n> [bias=0|1] [tokens=<n>]
//   conv2d    <name> cin=<n> cout=<n> kernel=<n> h=<n> w=<n> [stride=<n>]
//   layernorm <name> dim=<n> [tokens=<n>]
//   batchnorm <name> channels=<n> spatial=<n>
//   activation <name> elements=<n>
//   pooling    <name> elements=<n>
//   attention  <name> dim=<n> [tokens=<n>]
//   residual   <name> elements=<n>
//   raw <name> kind=<Kind> params=<bytes> flops=<n> act=<bytes> dha=<bytes> scales=<0|1>
//
// '#' starts a comment; tokens defaults to the model's ref_tokens. Layers
// appear in execution order. `raw` carries a layer's derived quantities
// verbatim — it is what ModelToSpec emits, making the round trip exact.
#ifndef SRC_MODEL_MODEL_SPEC_H_
#define SRC_MODEL_MODEL_SPEC_H_

#include <optional>
#include <string>

#include "src/model/model.h"

namespace deepplan {

// Parses a model description; returns nullopt and fills *error on failure.
std::optional<Model> ParseModelSpec(const std::string& text,
                                    std::string* error = nullptr);

// Loads and parses a description file.
std::optional<Model> LoadModelSpec(const std::string& path,
                                   std::string* error = nullptr);

// Renders a model back into the description format (round-trippable for the
// structural fields; derived quantities like FLOPs are regenerated on parse).
std::string ModelToSpec(const Model& model);

}  // namespace deepplan

#endif  // SRC_MODEL_MODEL_SPEC_H_
