// Layer descriptions for the DNN substrate. A Layer captures exactly what the
// provisioning problem needs: how many parameter bytes must move host->GPU,
// how much compute/activation traffic an inference performs, and how many
// parameter bytes a direct-host-access execution would pull across PCIe
// (Table 1 semantics: embeddings touch only the looked-up rows; conv/linear
// layers re-read weights with a kind-specific reuse factor).
#ifndef SRC_MODEL_LAYER_H_
#define SRC_MODEL_LAYER_H_

#include <cstdint>
#include <string>

namespace deepplan {

enum class LayerKind {
  kEmbedding,
  kConv2d,
  kLinear,
  kLayerNorm,
  kBatchNorm,
  kActivation,  // ReLU / GELU / softmax-style elementwise ops
  kPooling,
  kAttention,  // parameter-free QK^T / AV score computation
  kResidual,   // parameter-free elementwise add
};

const char* LayerKindName(LayerKind kind);

// Weight-reuse factor applied to param bytes to get DHA PCIe traffic,
// calibrated to Table 1 of the paper (conv ~1.8x, fully-connected ~12x,
// BatchNorm <1x, LayerNorm ~4x).
double DhaReuseFactor(LayerKind kind);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kActivation;

  // Parameter bytes that a load-then-execute must copy host->GPU (0 for
  // parameter-free layers).
  std::int64_t param_bytes = 0;

  // Forward-pass FLOPs for a single batch-1 inference at the model's
  // reference input size.
  std::int64_t flops = 0;

  // Activation bytes read+written in GPU memory for batch 1 (inputs +
  // outputs); scales linearly with batch size.
  std::int64_t act_bytes = 0;

  // Parameter bytes pulled across PCIe when executed with direct-host-access,
  // batch 1. For embeddings this is tokens*dim*4 (touched rows only); for
  // other parameterized layers it is param_bytes * DhaReuseFactor(kind).
  std::int64_t dha_param_traffic_bytes = 0;

  // True if DHA traffic scales with batch (embeddings: more rows touched);
  // weight-reuse layers re-read the same weights regardless of batch.
  bool dha_traffic_scales_with_batch = false;

  // ---- Factories -----------------------------------------------------------
  // `tokens` is the sequence length processed per inference item.
  static Layer Embedding(std::string name, std::int64_t rows, std::int64_t dim,
                         std::int64_t tokens);
  static Layer Linear(std::string name, std::int64_t in, std::int64_t out,
                      std::int64_t tokens, bool bias = true);
  static Layer Conv2d(std::string name, std::int64_t c_in, std::int64_t c_out,
                      std::int64_t kernel, std::int64_t h_out, std::int64_t w_out,
                      std::int64_t stride = 1);
  static Layer LayerNorm(std::string name, std::int64_t dim, std::int64_t tokens);
  static Layer BatchNorm(std::string name, std::int64_t channels, std::int64_t spatial);
  static Layer Activation(std::string name, std::int64_t elements);
  static Layer Pooling(std::string name, std::int64_t elements);
  static Layer Attention(std::string name, std::int64_t tokens, std::int64_t dim);
  static Layer Residual(std::string name, std::int64_t elements);

  bool has_params() const { return param_bytes > 0; }
};

}  // namespace deepplan

#endif  // SRC_MODEL_LAYER_H_
