// Model zoo: layer-accurate synthetic descriptions of the eight models the
// paper evaluates (Section 5.1), plus parameterized builders and the
// future-work models (Section 7): an MoE-style sparse model and an
// over-sized model that does not fit one GPU.
#ifndef SRC_MODEL_ZOO_H_
#define SRC_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/model.h"

namespace deepplan {

class ModelZoo {
 public:
  // The paper's benchmark set. Sequence length 384 for BERT/RoBERTa, 1024 for
  // GPT-2 (the paper's "1,204" is read as the standard GPT-2 context 1,024);
  // 224x224 RGB for ResNet.
  static Model ResNet50();
  static Model ResNet101();
  static Model BertBase();
  static Model BertLarge();
  static Model RobertaBase();
  static Model RobertaLarge();
  static Model Gpt2();
  static Model Gpt2Medium();

  // All eight, in the paper's figure order.
  static std::vector<Model> PaperModels();
  static Model ByName(const std::string& name);  // aborts on unknown name
  static std::vector<std::string> Names();

  // Parameterized builders (used by the paper models and by tests).
  static Model TransformerEncoder(std::string name, std::int64_t vocab,
                                  std::int64_t hidden, std::int64_t num_layers,
                                  std::int64_t ffn, std::int64_t seq);
  static Model TransformerDecoder(std::string name, std::int64_t vocab,
                                  std::int64_t hidden, std::int64_t num_layers,
                                  std::int64_t seq);
  static Model ResNet(std::string name, const std::vector<int>& blocks_per_stage);

  // Future-work models (Section 7).
  // Sparse MoE: `experts_per_layer` FFN experts per block, exactly one active
  // per inference. Inactive experts' parameters are cold (candidates to stay
  // host-side).
  static Model MoeSparse(std::string name, std::int64_t hidden, std::int64_t num_layers,
                         std::int64_t experts_per_layer, std::int64_t seq);
  // A decoder large enough to exceed a single 16 GB GPU.
  static Model Oversized(std::string name);
};

}  // namespace deepplan

#endif  // SRC_MODEL_ZOO_H_
