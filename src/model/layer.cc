#include "src/model/layer.h"

#include <cmath>

#include "src/util/logging.h"

namespace deepplan {

namespace {
constexpr std::int64_t kFloatBytes = 4;
}

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kEmbedding:
      return "Emb";
    case LayerKind::kConv2d:
      return "Conv";
    case LayerKind::kLinear:
      return "FC";
    case LayerKind::kLayerNorm:
      return "LN";
    case LayerKind::kBatchNorm:
      return "BN";
    case LayerKind::kActivation:
      return "Act";
    case LayerKind::kPooling:
      return "Pool";
    case LayerKind::kAttention:
      return "Attn";
    case LayerKind::kResidual:
      return "Res";
  }
  return "?";
}

double DhaReuseFactor(LayerKind kind) {
  // Calibrated to the PCIeRdCur counts in Table 1: DHA/load event ratios are
  // ~1.79 for convolutions and ~12.1 for fully-connected layers. BatchNorm's
  // per-channel vectors are read once and broadcast (<1x); LayerNorm's
  // gain/bias vectors get re-read per token tile (~4x).
  switch (kind) {
    case LayerKind::kConv2d:
      return 1.8;
    case LayerKind::kLinear:
      return 12.0;
    case LayerKind::kBatchNorm:
      return 0.5;
    case LayerKind::kLayerNorm:
      return 4.0;
    case LayerKind::kEmbedding:
    case LayerKind::kActivation:
    case LayerKind::kPooling:
    case LayerKind::kAttention:
    case LayerKind::kResidual:
      return 0.0;  // embeddings are computed from touched rows; the rest have no params
  }
  return 0.0;
}

Layer Layer::Embedding(std::string name, std::int64_t rows, std::int64_t dim,
                       std::int64_t tokens) {
  DP_CHECK(rows > 0 && dim > 0 && tokens > 0);
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kEmbedding;
  l.param_bytes = rows * dim * kFloatBytes;
  l.flops = tokens * dim;  // gather + copy
  l.act_bytes = 2 * tokens * dim * kFloatBytes;
  // Only the looked-up rows cross PCIe under DHA (Table 1: 18,432 64B events
  // for seq 384 x 768 regardless of table size).
  l.dha_param_traffic_bytes = tokens * dim * kFloatBytes;
  l.dha_traffic_scales_with_batch = true;
  return l;
}

Layer Layer::Linear(std::string name, std::int64_t in, std::int64_t out,
                    std::int64_t tokens, bool bias) {
  DP_CHECK(in > 0 && out > 0 && tokens > 0);
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLinear;
  l.param_bytes = (in * out + (bias ? out : 0)) * kFloatBytes;
  l.flops = 2 * in * out * tokens;
  l.act_bytes = (in + out) * tokens * kFloatBytes;
  l.dha_param_traffic_bytes =
      static_cast<std::int64_t>(static_cast<double>(l.param_bytes) *
                                DhaReuseFactor(l.kind));
  return l;
}

Layer Layer::Conv2d(std::string name, std::int64_t c_in, std::int64_t c_out,
                    std::int64_t kernel, std::int64_t h_out, std::int64_t w_out,
                    std::int64_t stride) {
  DP_CHECK(c_in > 0 && c_out > 0 && kernel > 0 && h_out > 0 && w_out > 0 && stride > 0);
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv2d;
  l.param_bytes = kernel * kernel * c_in * c_out * kFloatBytes;
  l.flops = 2 * kernel * kernel * c_in * c_out * h_out * w_out;
  const std::int64_t in_elems = c_in * h_out * w_out * stride * stride;
  const std::int64_t out_elems = c_out * h_out * w_out;
  l.act_bytes = (in_elems + out_elems) * kFloatBytes;
  l.dha_param_traffic_bytes =
      static_cast<std::int64_t>(static_cast<double>(l.param_bytes) *
                                DhaReuseFactor(l.kind));
  return l;
}

Layer Layer::LayerNorm(std::string name, std::int64_t dim, std::int64_t tokens) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLayerNorm;
  l.param_bytes = 2 * dim * kFloatBytes;
  l.flops = 8 * dim * tokens;
  l.act_bytes = 2 * tokens * dim * kFloatBytes;
  l.dha_param_traffic_bytes =
      static_cast<std::int64_t>(static_cast<double>(l.param_bytes) *
                                DhaReuseFactor(l.kind));
  return l;
}

Layer Layer::BatchNorm(std::string name, std::int64_t channels, std::int64_t spatial) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kBatchNorm;
  l.param_bytes = 4 * channels * kFloatBytes;  // gamma, beta, running mean/var
  l.flops = 4 * channels * spatial;
  l.act_bytes = 2 * channels * spatial * kFloatBytes;
  l.dha_param_traffic_bytes =
      static_cast<std::int64_t>(static_cast<double>(l.param_bytes) *
                                DhaReuseFactor(l.kind));
  return l;
}

Layer Layer::Activation(std::string name, std::int64_t elements) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kActivation;
  l.flops = elements;
  l.act_bytes = 2 * elements * kFloatBytes;
  return l;
}

Layer Layer::Pooling(std::string name, std::int64_t elements) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kPooling;
  l.flops = elements;
  l.act_bytes = 2 * elements * kFloatBytes;
  return l;
}

Layer Layer::Attention(std::string name, std::int64_t tokens, std::int64_t dim) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kAttention;
  // QK^T and AV each cost 2*tokens^2*dim FLOPs.
  l.flops = 4 * tokens * tokens * dim;
  l.act_bytes = (3 * tokens * dim + tokens * tokens) * kFloatBytes;
  return l;
}

Layer Layer::Residual(std::string name, std::int64_t elements) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kResidual;
  l.flops = elements;
  l.act_bytes = 3 * elements * kFloatBytes;
  return l;
}

}  // namespace deepplan
