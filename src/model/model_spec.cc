#include "src/model/model_spec.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace deepplan {

namespace {

// Parses "key=value" attributes after the layer name into a map.
bool ParseAttrs(std::istringstream& is, std::map<std::string, std::string>* attrs,
                std::string* error) {
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + token + "'";
      return false;
    }
    (*attrs)[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return true;
}

std::int64_t AttrInt(const std::map<std::string, std::string>& attrs,
                     const std::string& key, std::int64_t fallback) {
  const auto it = attrs.find(key);
  if (it == attrs.end()) {
    return fallback;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool RequireAttrs(const std::map<std::string, std::string>& attrs,
                  std::initializer_list<const char*> keys, std::string* error) {
  for (const char* key : keys) {
    if (attrs.find(key) == attrs.end()) {
      *error = std::string("missing attribute '") + key + "'";
      return false;
    }
  }
  return true;
}

std::optional<LayerKind> KindFromName(const std::string& name) {
  for (const LayerKind kind :
       {LayerKind::kEmbedding, LayerKind::kConv2d, LayerKind::kLinear,
        LayerKind::kLayerNorm, LayerKind::kBatchNorm, LayerKind::kActivation,
        LayerKind::kPooling, LayerKind::kAttention, LayerKind::kResidual}) {
    if (name == LayerKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Model> ParseModelSpec(const std::string& text, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  std::istringstream lines(text);
  std::string line;
  std::string model_name;
  std::int64_t ref_tokens = 1;
  std::vector<Layer> layers;
  int line_no = 0;
  bool saw_model = false;
  while (std::getline(lines, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream is(line);
    std::string kind;
    if (!(is >> kind)) {
      continue;  // blank/comment line
    }
    auto fail = [&](const std::string& msg) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
      return std::nullopt;
    };
    if (kind == "model") {
      std::string name;
      if (!(is >> name)) {
        return fail("model needs a name");
      }
      model_name = name;
      saw_model = true;
      std::map<std::string, std::string> attrs;
      if (!ParseAttrs(is, &attrs, error)) {
        return fail(*error);
      }
      ref_tokens = AttrInt(attrs, "tokens", 1);
      continue;
    }
    if (!saw_model) {
      return fail("layer before 'model' header");
    }
    std::string name;
    if (!(is >> name)) {
      return fail(kind + " needs a name");
    }
    std::map<std::string, std::string> attrs;
    if (!ParseAttrs(is, &attrs, error)) {
      return fail(*error);
    }
    const std::int64_t tokens = AttrInt(attrs, "tokens", ref_tokens);
    if (kind == "embedding") {
      if (!RequireAttrs(attrs, {"rows", "dim"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Embedding(name, AttrInt(attrs, "rows", 0),
                                        AttrInt(attrs, "dim", 0), tokens));
    } else if (kind == "linear") {
      if (!RequireAttrs(attrs, {"in", "out"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Linear(name, AttrInt(attrs, "in", 0),
                                     AttrInt(attrs, "out", 0), tokens,
                                     AttrInt(attrs, "bias", 1) != 0));
    } else if (kind == "conv2d") {
      if (!RequireAttrs(attrs, {"cin", "cout", "kernel", "h", "w"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Conv2d(
          name, AttrInt(attrs, "cin", 0), AttrInt(attrs, "cout", 0),
          AttrInt(attrs, "kernel", 0), AttrInt(attrs, "h", 0), AttrInt(attrs, "w", 0),
          AttrInt(attrs, "stride", 1)));
    } else if (kind == "layernorm") {
      if (!RequireAttrs(attrs, {"dim"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::LayerNorm(name, AttrInt(attrs, "dim", 0), tokens));
    } else if (kind == "batchnorm") {
      if (!RequireAttrs(attrs, {"channels", "spatial"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::BatchNorm(name, AttrInt(attrs, "channels", 0),
                                        AttrInt(attrs, "spatial", 0)));
    } else if (kind == "activation") {
      if (!RequireAttrs(attrs, {"elements"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Activation(name, AttrInt(attrs, "elements", 0)));
    } else if (kind == "pooling") {
      if (!RequireAttrs(attrs, {"elements"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Pooling(name, AttrInt(attrs, "elements", 0)));
    } else if (kind == "attention") {
      if (!RequireAttrs(attrs, {"dim"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Attention(name, tokens, AttrInt(attrs, "dim", 0)));
    } else if (kind == "residual") {
      if (!RequireAttrs(attrs, {"elements"}, error)) {
        return fail(*error);
      }
      layers.push_back(Layer::Residual(name, AttrInt(attrs, "elements", 0)));
    } else if (kind == "raw") {
      if (!RequireAttrs(attrs, {"kind", "params", "flops", "act", "dha"}, error)) {
        return fail(*error);
      }
      const auto layer_kind = KindFromName(attrs["kind"]);
      if (!layer_kind.has_value()) {
        return fail("unknown raw kind '" + attrs["kind"] + "'");
      }
      Layer l;
      l.name = name;
      l.kind = *layer_kind;
      l.param_bytes = AttrInt(attrs, "params", 0);
      l.flops = AttrInt(attrs, "flops", 0);
      l.act_bytes = AttrInt(attrs, "act", 0);
      l.dha_param_traffic_bytes = AttrInt(attrs, "dha", 0);
      l.dha_traffic_scales_with_batch = AttrInt(attrs, "scales", 0) != 0;
      layers.push_back(std::move(l));
    } else {
      return fail("unknown layer kind '" + kind + "'");
    }
  }
  if (!saw_model) {
    *error = "no 'model' header";
    return std::nullopt;
  }
  if (layers.empty()) {
    *error = "model has no layers";
    return std::nullopt;
  }
  return Model(model_name, std::move(layers), ref_tokens);
}

std::optional<Model> LoadModelSpec(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseModelSpec(buffer.str(), error);
}

std::string ModelToSpec(const Model& model) {
  std::ostringstream os;
  os << "model " << model.name() << " tokens=" << model.ref_tokens() << "\n";
  for (const Layer& l : model.layers()) {
    os << "raw " << l.name << " kind=" << LayerKindName(l.kind)
       << " params=" << l.param_bytes << " flops=" << l.flops << " act=" << l.act_bytes
       << " dha=" << l.dha_param_traffic_bytes
       << " scales=" << (l.dha_traffic_scales_with_batch ? 1 : 0) << "\n";
  }
  return os.str();
}

}  // namespace deepplan
