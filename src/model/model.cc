#include "src/model/model.h"

#include <sstream>

#include "src/util/logging.h"
#include "src/util/time.h"

namespace deepplan {

Model::Model(std::string name, std::vector<Layer> layers, std::int64_t ref_tokens)
    : name_(std::move(name)), layers_(std::move(layers)), ref_tokens_(ref_tokens) {
  for (const Layer& l : layers_) {
    total_param_bytes_ += l.param_bytes;
    total_flops_ += l.flops;
    if (l.has_params()) {
      ++num_param_layers_;
    }
  }
}

const Layer& Model::layer(std::size_t i) const {
  DP_CHECK(i < layers_.size());
  return layers_[i];
}

std::int64_t Model::ParamBytesInRange(std::size_t first, std::size_t last) const {
  DP_CHECK(first <= last && last < layers_.size());
  std::int64_t sum = 0;
  for (std::size_t i = first; i <= last; ++i) {
    sum += layers_[i].param_bytes;
  }
  return sum;
}

std::string Model::Summary() const {
  std::ostringstream os;
  os << name_ << ": " << layers_.size() << " layers, "
     << FormatBytes(total_param_bytes_) << " params, " << total_flops_ / 1000000
     << " MFLOPs @ tokens=" << ref_tokens_ << "\n";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    os << "  [" << i << "] " << LayerKindName(l.kind) << " " << l.name << " params="
       << FormatBytes(l.param_bytes) << " flops=" << l.flops << "\n";
  }
  return os.str();
}

}  // namespace deepplan
