// A Model is an ordered sequence of layers (the paper treats DNNs as layer
// chains for provisioning purposes) plus reference-input metadata.
#ifndef SRC_MODEL_MODEL_H_
#define SRC_MODEL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/layer.h"

namespace deepplan {

class Model {
 public:
  Model() = default;
  Model(std::string name, std::vector<Layer> layers, std::int64_t ref_tokens = 1);

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  const Layer& layer(std::size_t i) const;
  std::size_t num_layers() const { return layers_.size(); }

  // Sequence length (transformers) or 1 (vision) at the reference input.
  std::int64_t ref_tokens() const { return ref_tokens_; }

  std::int64_t total_param_bytes() const { return total_param_bytes_; }
  std::int64_t total_flops() const { return total_flops_; }
  // Number of layers that carry parameters (these are the transfer units).
  std::size_t num_param_layers() const { return num_param_layers_; }

  // Sum of param bytes over layers [first, last] inclusive.
  std::int64_t ParamBytesInRange(std::size_t first, std::size_t last) const;

  // One line per layer: index, kind, name, sizes. For plan inspection tools.
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  std::int64_t ref_tokens_ = 1;
  std::int64_t total_param_bytes_ = 0;
  std::int64_t total_flops_ = 0;
  std::size_t num_param_layers_ = 0;
};

}  // namespace deepplan

#endif  // SRC_MODEL_MODEL_H_
