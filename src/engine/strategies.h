// The five execution options of the paper's evaluation (Section 5.1):
// Baseline (non-pipelined load-then-execute), PipeSwitch (layer-pipelined
// transmission), and DeepPlan's DHA, PT, and PT+DHA. A Strategy bundles the
// plan-generation recipe with the engine options needed to run it.
#ifndef SRC_ENGINE_STRATEGIES_H_
#define SRC_ENGINE_STRATEGIES_H_

#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/engine/engine.h"

namespace deepplan {

enum class Strategy {
  kBaseline,
  kPipeSwitch,
  kDeepPlanDha,
  kDeepPlanPt,
  kDeepPlanPtDha,
};

const char* StrategyName(Strategy strategy);
std::vector<Strategy> AllStrategies();

// Parallel-transmission degree a strategy wants on this topology (1 for the
// single-GPU strategies).
int StrategyDegree(Strategy strategy, const Topology& topology, GpuId primary);

// Builds the execution plan a strategy deploys, from a profile. `degree` must
// come from StrategyDegree (or be 1).
ExecutionPlan MakeStrategyPlan(Strategy strategy, const ModelProfile& profile,
                               int degree, const PipelineOptions& pipeline = {});

// Engine options a strategy runs with.
ColdRunOptions MakeColdRunOptions(Strategy strategy, int batch = 1);

}  // namespace deepplan

#endif  // SRC_ENGINE_STRATEGIES_H_
