#include "src/engine/engine.h"

#include <algorithm>
#include <memory>

#include "src/obs/selfprof.h"
#include "src/sim/stream.h"
#include "src/util/arena.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

ServerFabric::ServerFabric(Simulator* sim, const Topology* topology)
    : sim_(sim), topology_(topology), fabric_(sim) {
  DP_CHECK(topology != nullptr);
  for (int s = 0; s < topology_->num_switches(); ++s) {
    uplink_of_switch_.push_back(
        fabric_.AddLink("uplink/sw" + std::to_string(s), topology_->switch_uplink_bw()));
  }
  for (GpuId g = 0; g < topology_->num_gpus(); ++g) {
    pcie_of_gpu_.push_back(fabric_.AddLink(
        "pcie/gpu" + std::to_string(g), topology_->pcie().effective_bw_bytes_per_sec));
  }
  const int n = topology_->num_gpus();
  nvlink_.assign(Idx(n), std::vector<LinkId>(Idx(n), -1));
  for (GpuId a = 0; a < n; ++a) {
    for (GpuId b = 0; b < n; ++b) {
      if (a != b && topology_->HasNvlink(a, b)) {
        nvlink_[Idx(a)][Idx(b)] =
            fabric_.AddLink("nvlink/" + std::to_string(a) + "-" + std::to_string(b),
                            topology_->nvlink().bw_bytes_per_sec);
      }
    }
  }
}

std::vector<LinkId> ServerFabric::HostToGpuPath(GpuId gpu) const {
  DP_CHECK(gpu >= 0 && gpu < topology_->num_gpus());
  return {uplink_of_switch_[Idx(topology_->switch_of(gpu))], pcie_of_gpu_[Idx(gpu)]};
}

std::vector<LinkId> ServerFabric::GpuToGpuPath(GpuId from, GpuId to) const {
  DP_CHECK(from >= 0 && from < topology_->num_gpus());
  DP_CHECK(to >= 0 && to < topology_->num_gpus());
  const LinkId link = nvlink_[Idx(from)][Idx(to)];
  DP_CHECK(link >= 0 && "no NVLink between GPUs");
  return {link};
}

LinkId ServerFabric::pcie_link(GpuId gpu) const {
  DP_CHECK(gpu >= 0 && gpu < topology_->num_gpus());
  return pcie_of_gpu_[Idx(gpu)];
}

std::vector<CpHop> ServerFabric::CausalHops(const std::vector<LinkId>& path) const {
  std::vector<CpHop> hops;
  hops.reserve(path.size());
  for (const LinkId l : path) {
    hops.push_back(CpHop{fabric_.link_name(l), fabric_.link_capacity(l)});
  }
  return hops;
}

namespace engine_internal {

// One transfer unit on a PCIe/NVLink chain: one layer, or several
// consecutive layers coalesced into a transmission group (PipeSwitch-style
// grouping amortizes per-copy overhead at the cost of coarser pipelining).
struct LoadItem {
  std::vector<std::size_t> layer_indices;
  std::int64_t bytes = 0;
  // Label for timeline/recorder/causal output; left empty (not built) when no
  // consumer is attached, which is the serving hot path.
  std::string name;
};

// All mutable state of one in-flight cold run. Runs are pooled: the engine
// recycles a retired run's record — sync events, streams, per-partition item
// lists — so a million-cold-start replay reuses the same buffers instead of
// allocating hundreds of heap objects per run. The record stays owned by the
// pool for the engine's lifetime, so the raw pointers captured by in-flight
// closures can never dangle.
struct ColdRun {
  Nanos start = 0;
  InferenceResult result;
  std::vector<SyncEvent> arrived;       // per layer, primary GPU
  std::vector<SyncEvent> at_secondary;  // per layer, secondary GPU
  SyncEvent all_loaded;                 // Baseline gate
  Stream exec;
  std::vector<Stream> migration;  // per partition (index 0 unused)
  std::vector<std::vector<LoadItem>> part_items;
  int pending_arrivals = 0;
  // Causal-graph cursors (only populated when the run records profiling
  // nodes): chains thread happens-before edges through these.
  int causal_request = -1;
  CpNodeId causal_root = -1;
  std::vector<CpNodeId> layer_source;      // node that delivered each layer
  std::vector<CpNodeId> secondary_source;  // PCIe node per layer (partitions>0)
  std::vector<CpNodeId> pcie_prev;         // per-partition PCIe chain cursor
  std::vector<CpNodeId> mig_prev;          // per-partition migration cursor
  CpNodeId last_exec = -1;
  CpNodeId all_loaded_source = -1;  // node whose arrival fired all_loaded
};

}  // namespace engine_internal

using engine_internal::ColdRun;
using engine_internal::LoadItem;

// Pool of reusable ColdRun records plus the deferred-release list. A run
// cannot be released the moment its completion callback fires: the execute
// stream's op machinery still runs (on the run's own Stream member) after the
// marker returns, and the callback may synchronously start another inference.
// Retired runs are instead recycled at the next RunCold, which always begins
// from a fresh event dispatch, by which point every prior run is quiescent.
struct EngineScratch {
  ObjectPool<ColdRun> pool;
  std::vector<ColdRun*> retired;
};

Engine::Engine(Simulator* sim, ServerFabric* fabric, const PerfModel* perf)
    : sim_(sim), fabric_(fabric), perf_(perf),
      scratch_(std::make_unique<EngineScratch>()) {
  DP_CHECK(sim != nullptr && fabric != nullptr && perf != nullptr);
}

Engine::~Engine() = default;

void Engine::set_telemetry(TraceRecorder* recorder, int pid) {
  recorder_ = recorder;
  pid_ = pid;
}

void Engine::RunCold(const Model& model, const ExecutionPlan& plan, GpuId primary,
                     std::vector<GpuId> secondaries, const ColdRunOptions& options,
                     std::function<void(InferenceResult)> done) {
  // Times the synchronous DAG construction (per-layer op enqueues); the ops
  // themselves execute later under sim.dispatch / exec.stream.
  DP_SELFPROF_SCOPE(kColdStart);
  const std::size_t n = model.num_layers();
  DP_CHECK(plan.num_layers() == n);
  DP_CHECK(static_cast<int>(secondaries.size()) >= plan.num_partitions() - 1);

  // Recycle runs that retired since the last call (see EngineScratch).
  for (ColdRun* r : scratch_->retired) {
    scratch_->pool.Release(r);
  }
  scratch_->retired.clear();

  ColdRun* run = scratch_->pool.Acquire();
  const std::size_t parts = Idx(plan.num_partitions());
  run->start = sim_->now();
  run->result.latency = 0;
  run->result.exec_busy = 0;
  run->result.stall = 0;
  run->result.load_done = 0;
  run->result.cold = true;
  run->result.partitions.clear();
  run->result.partitions.resize(parts);
  run->result.timeline.clear();
  run->result.causal_terminal = -1;
  if (run->arrived.size() < n) {
    run->arrived.resize(n);
    run->at_secondary.resize(n);
  }
  run->all_loaded.Reset(sim_);
  run->exec.Reset(sim_, "exec/gpu" + std::to_string(primary));
  if (run->migration.size() < parts) {
    run->migration.resize(parts);
  }
  for (auto& items : run->part_items) {
    items.clear();
  }
  if (run->part_items.size() < parts) {
    run->part_items.resize(parts);
  }
  run->pending_arrivals = 0;
  run->causal_request = -1;
  run->causal_root = -1;
  run->last_exec = -1;
  run->all_loaded_source = -1;

  // Causal profiling is per-run: active only when a graph is attached AND
  // this run was given a request to hang its nodes off.
  if (causal_ != nullptr && causal_->enabled() && options.causal_request >= 0) {
    run->causal_request = options.causal_request;
    run->causal_root = options.causal_root >= 0
                           ? options.causal_root
                           : causal_->arrival_node(options.causal_request);
    run->layer_source.assign(n, -1);
    run->secondary_source.assign(n, -1);
    run->pcie_prev.assign(parts, run->causal_root);
    run->mig_prev.assign(parts, run->causal_root);
    run->last_exec = run->causal_root;
    run->all_loaded_source = run->causal_root;
  }

  // Item labels are consumed only by the timeline, the trace recorder, and
  // the causal graph; skip the string building entirely when none of those
  // is active for this run (the serving hot path).
  const bool want_names = options.record_timeline || recorder_ != nullptr ||
                          run->causal_request >= 0;

  for (std::size_t i = 0; i < n; ++i) {
    const Layer& layer = model.layer(i);
    if (plan.method(i) == ExecMethod::kLoad && layer.has_params()) {
      const int p = plan.partition(i);
      auto& items = run->part_items[Idx(p)];
      const int group = options.transfer_group_layers;
      if (!items.empty() &&
          static_cast<int>(items.back().layer_indices.size()) < group) {
        items.back().layer_indices.push_back(i);
        items.back().bytes += layer.param_bytes;
        if (want_names) {
          items.back().name += "+" + layer.name;
        }
      } else {
        items.push_back(LoadItem{
            {i}, layer.param_bytes, want_names ? layer.name : std::string()});
      }
      run->arrived[i].Reset(sim_);
      run->at_secondary[i].Reset(sim_);
      ++run->pending_arrivals;
      run->result.partitions[Idx(p)].bytes += layer.param_bytes;
    }
  }
  if (run->pending_arrivals == 0) {
    run->all_loaded.Fire();
  }

  auto on_arrival = [this, run](std::size_t layer_index, int partition) {
    run->arrived[layer_index].Fire();
    auto& ps = run->result.partitions[Idx(partition)];
    ps.arrival_done = std::max(ps.arrival_done, sim_->now() - run->start);
    run->result.load_done = std::max(run->result.load_done, sim_->now() - run->start);
    if (--run->pending_arrivals == 0) {
      if (run->causal_request >= 0) {
        // The node that delivered the last layer is what a non-pipelined
        // Baseline's gated exec ops causally wait on.
        run->all_loaded_source = run->layer_source[layer_index];
      }
      run->all_loaded.Fire();
    }
  };

  // PCIe load chains: one sequential chain per partition, each through its
  // own GPU's PCIe lane (primary for partition 0, secondaries for the rest).
  // The per-transfer DMA-setup overhead is the fabric latency term, so it
  // serializes into the chain exactly as back-to-back cudaMemcpyAsync calls.
  for (int p = 0; p < plan.num_partitions(); ++p) {
    if (run->part_items[Idx(p)].empty()) {
      continue;
    }
    const GpuId target = p == 0 ? primary : secondaries[Idx(p - 1)];
    run->result.partitions[Idx(p)].pcie_start = 0;
    const bool record = options.record_timeline;
    // The stored closure must hold only a weak reference to itself: a strong
    // self-capture is a shared_ptr cycle that leaks the closure. Each
    // in-flight fabric completion re-locks a strong reference, so the chain
    // stays alive exactly until it drains.
    auto chain = std::make_shared<std::function<void(std::size_t)>>();
    std::weak_ptr<std::function<void(std::size_t)>> weak_chain = chain;
    *chain = [this, run, p, target, weak_chain, on_arrival, record](std::size_t k) {
      const auto& items = run->part_items[Idx(p)];
      if (k >= items.size()) {
        return;
      }
      auto self = weak_chain.lock();
      DP_CHECK(self != nullptr);  // the caller holds a strong reference
      const Nanos op_start = sim_->now() - run->start;
      fabric_->fabric().Start(
          fabric_->HostToGpuPath(target), items[k].bytes,
          perf_->calibration().pcie_transfer_overhead,
          [this, run, p, k, self, on_arrival, record, target, op_start](Nanos) {
            run->result.partitions[Idx(p)].pcie_done = sim_->now() - run->start;
            if (record) {
              run->result.timeline.push_back(
                  TimelineEvent{"load " + run->part_items[Idx(p)][k].name,
                                "pcie/gpu" + std::to_string(target), op_start,
                                sim_->now() - run->start - op_start});
            }
            if (recorder_ != nullptr) {
              // Async interval, not a complete slice: another run's chain may
              // be draining through this PCIe lane at the same time.
              const std::uint64_t aid = next_async_id_++;
              const std::string track = "pcie/gpu" + std::to_string(target);
              const std::string name = "load " + run->part_items[Idx(p)][k].name;
              recorder_->AsyncBegin(pid_, track, name, aid, run->start + op_start);
              recorder_->AsyncEnd(pid_, track, name, aid, sim_->now());
            }
            if (run->causal_request >= 0) {
              const LoadItem& item = run->part_items[Idx(p)][k];
              const CpNodeId node = causal_->AddNode(
                  run->causal_request, CpKind::kPcie, "load " + item.name,
                  "pcie/gpu" + std::to_string(target), run->start + op_start,
                  sim_->now(), item.bytes,
                  fabric_->fabric().SoloDuration(
                      fabric_->HostToGpuPath(target), item.bytes,
                      perf_->calibration().pcie_transfer_overhead));
              causal_->SetNodePath(node,
                                   fabric_->CausalHops(fabric_->HostToGpuPath(target)));
              causal_->AddEdge(run->pcie_prev[Idx(p)], node);
              run->pcie_prev[Idx(p)] = node;
              for (const std::size_t li : item.layer_indices) {
                (p == 0 ? run->layer_source : run->secondary_source)[li] = node;
              }
            }
            for (const std::size_t li : run->part_items[Idx(p)][k].layer_indices) {
              if (p == 0) {
                on_arrival(li, p);
              } else {
                run->at_secondary[li].Fire();
              }
            }
            (*self)(k + 1);
          });
    };
    (*chain)(0);
  }

  // NVLink migration: forward partitions > 0 from their secondary GPU to the
  // primary, either per layer (parallel-pipeline) or as one bulk transfer.
  const NvlinkSpec& nvlink = fabric_->topology().nvlink();
  for (int p = 1; p < plan.num_partitions(); ++p) {
    if (run->part_items[Idx(p)].empty()) {
      continue;
    }
    run->migration[Idx(p)].Reset(sim_, "migrate/p" + std::to_string(p));
    Stream* mig = &run->migration[Idx(p)];
    const GpuId src = secondaries[Idx(p - 1)];
    if (options.migration == MigrationMode::kPipelined) {
      const bool record = options.record_timeline;
      // Closures reference items by (partition, index): part_items is fully
      // built before any chain starts and never mutated during the run, so
      // indices stay valid and nothing copies the item's label or layer list.
      const std::size_t num_items = run->part_items[Idx(p)].size();
      for (std::size_t k = 0; k < num_items; ++k) {
        for (const std::size_t li : run->part_items[Idx(p)][k].layer_indices) {
          mig->EnqueueWait(&run->at_secondary[li]);
        }
        mig->Enqueue([this, run, p, k, src, primary, nvlink, record,
                      on_arrival](std::function<void()> op_done) {
          const Nanos op_start = sim_->now() - run->start;
          fabric_->fabric().Start(
              fabric_->GpuToGpuPath(src, primary), run->part_items[Idx(p)][k].bytes,
              nvlink.transfer_latency,
              [this, run, p, k, src, primary, nvlink, record, op_start,
               on_arrival, op_done = std::move(op_done)](Nanos) {
                const LoadItem& item = run->part_items[Idx(p)][k];
                if (record) {
                  run->result.timeline.push_back(TimelineEvent{
                      "migrate " + item.name,
                      "nvlink/" + std::to_string(src) + "->" + std::to_string(primary),
                      op_start, sim_->now() - run->start - op_start});
                }
                if (recorder_ != nullptr) {
                  const std::uint64_t aid = next_async_id_++;
                  const std::string track =
                      "nvlink/" + std::to_string(src) + "->" + std::to_string(primary);
                  recorder_->AsyncBegin(pid_, track, "migrate " + item.name, aid,
                                        run->start + op_start);
                  recorder_->AsyncEnd(pid_, track, "migrate " + item.name, aid,
                                      sim_->now());
                }
                if (run->causal_request >= 0) {
                  const CpNodeId node = causal_->AddNode(
                      run->causal_request, CpKind::kNvlink, "migrate " + item.name,
                      "nvlink/" + std::to_string(src) + "->" +
                          std::to_string(primary),
                      run->start + op_start, sim_->now(), item.bytes,
                      fabric_->fabric().SoloDuration(
                          fabric_->GpuToGpuPath(src, primary), item.bytes,
                          nvlink.transfer_latency));
                  causal_->SetNodePath(
                      node, fabric_->CausalHops(fabric_->GpuToGpuPath(src, primary)));
                  causal_->AddEdge(run->mig_prev[Idx(p)], node);
                  // The migration waited on this item's PCIe delivery to the
                  // secondary GPU (one PCIe node covers the whole item).
                  causal_->AddEdge(
                      run->secondary_source[item.layer_indices.front()], node);
                  run->mig_prev[Idx(p)] = node;
                  for (const std::size_t li : item.layer_indices) {
                    run->layer_source[li] = node;
                  }
                }
                for (const std::size_t li : item.layer_indices) {
                  on_arrival(li, p);
                }
                op_done();
              });
        });
      }
    } else {
      std::int64_t bytes = 0;
      for (const LoadItem& item : run->part_items[Idx(p)]) {
        for (const std::size_t li : item.layer_indices) {
          mig->EnqueueWait(&run->at_secondary[li]);
        }
        bytes += item.bytes;
      }
      mig->Enqueue([this, run, p, src, primary, bytes, nvlink,
                    on_arrival](std::function<void()> op_done) {
        const Nanos op_start = sim_->now() - run->start;
        fabric_->fabric().Start(
            fabric_->GpuToGpuPath(src, primary), bytes, nvlink.transfer_latency,
            [this, run, p, src, primary, bytes, nvlink, op_start, on_arrival,
             op_done = std::move(op_done)](Nanos) {
              if (run->causal_request >= 0) {
                const CpNodeId node = causal_->AddNode(
                    run->causal_request, CpKind::kNvlink,
                    "migrate bulk p" + std::to_string(p),
                    "nvlink/" + std::to_string(src) + "->" +
                        std::to_string(primary),
                    run->start + op_start, sim_->now(), bytes,
                    fabric_->fabric().SoloDuration(
                        fabric_->GpuToGpuPath(src, primary), bytes,
                        nvlink.transfer_latency));
                causal_->SetNodePath(
                    node, fabric_->CausalHops(fabric_->GpuToGpuPath(src, primary)));
                causal_->AddEdge(run->mig_prev[Idx(p)], node);
                for (const LoadItem& item : run->part_items[Idx(p)]) {
                  causal_->AddEdge(
                      run->secondary_source[item.layer_indices.front()], node);
                }
                run->mig_prev[Idx(p)] = node;
                for (const LoadItem& item : run->part_items[Idx(p)]) {
                  for (const std::size_t li : item.layer_indices) {
                    run->layer_source[li] = node;
                  }
                }
              }
              for (const LoadItem& item : run->part_items[Idx(p)]) {
                for (const std::size_t li : item.layer_indices) {
                  on_arrival(li, p);
                }
              }
              op_done();
            });
      });
    }
  }

  // Execute stream on the primary GPU, gated on per-layer arrival events
  // (or on the all-loaded event for the non-pipelined Baseline).
  for (std::size_t i = 0; i < n; ++i) {
    const Layer& layer = model.layer(i);
    const bool loads = plan.method(i) == ExecMethod::kLoad && layer.has_params();
    if (loads) {
      run->exec.EnqueueWait(options.pipelined ? &run->arrived[i]
                                              : &run->all_loaded);
    }
    const Nanos exec = plan.method(i) == ExecMethod::kDirectHostAccess
                           ? perf_->ExecDha(layer, options.batch)
                           : perf_->ExecInMemory(layer, options.batch);
    if (options.record_timeline || recorder_ != nullptr ||
        run->causal_request >= 0) {
      const bool dha = plan.method(i) == ExecMethod::kDirectHostAccess;
      const bool record = options.record_timeline;
      const bool pipelined = options.pipelined;
      const Nanos dha_pcie = dha ? perf_->DhaPcieTime(layer, options.batch) : 0;
      run->exec.Enqueue([this, run, exec, dha, dha_pcie, primary, record, i,
                         loads, pipelined,
                         name = layer.name](std::function<void()> op_done) {
        const Nanos op_start = sim_->now() - run->start;
        sim_->ScheduleAfter(exec, [this, run, op_start, dha, dha_pcie, primary,
                                   record, i, loads, pipelined, name,
                                   op_done = std::move(op_done)]() {
          if (record) {
            run->result.timeline.push_back(
                TimelineEvent{(dha ? "exec(DHA) " : "exec ") + name,
                              "exec/gpu" + std::to_string(primary), op_start,
                              sim_->now() - run->start - op_start});
          }
          if (recorder_ != nullptr) {
            recorder_->Span(pid_, "exec/gpu" + std::to_string(primary),
                            (dha ? "exec(DHA) " : "exec ") + name,
                            run->start + op_start,
                            sim_->now() - run->start - op_start);
          }
          if (run->causal_request >= 0) {
            const CpNodeId node = causal_->AddNode(
                run->causal_request, CpKind::kExec,
                (dha ? "exec(DHA) " : "exec ") + name,
                "exec/gpu" + std::to_string(primary), run->start + op_start,
                sim_->now());
            if (dha_pcie > 0) {
              causal_->SetNodeDhaPcie(node, dha_pcie);
            }
            causal_->AddEdge(run->last_exec, node);
            if (loads) {
              causal_->AddEdge(pipelined ? run->layer_source[i]
                                         : run->all_loaded_source,
                               node);
            }
            run->last_exec = node;
          }
          op_done();
        });
      });
    } else {
      run->exec.EnqueueDelay(exec);
    }
    run->result.exec_busy += exec;
  }
  run->exec.EnqueueMarker([this, run, done = std::move(done)]() {
    run->result.latency = sim_->now() - run->start;
    run->result.stall = run->exec.wait_time();
    if (run->causal_request >= 0 && run->last_exec != run->causal_root) {
      run->result.causal_terminal = run->last_exec;
    }
    done(run->result);
    // The run is over, but its execute stream still unwinds after this
    // marker returns (and `done` may have synchronously started new work),
    // so the record only retires here; the next RunCold recycles it.
    scratch_->retired.push_back(run);
  });
}

Nanos Engine::WarmDuration(const Model& model, const ExecutionPlan& plan,
                           int batch) const {
  DP_CHECK(plan.num_layers() == model.num_layers());
  Nanos total = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    total += plan.method(i) == ExecMethod::kDirectHostAccess
                 ? perf_->ExecDha(model.layer(i), batch)
                 : perf_->ExecInMemory(model.layer(i), batch);
  }
  return total;
}

Nanos Engine::WarmDhaPcieTime(const Model& model, const ExecutionPlan& plan,
                              int batch) const {
  DP_CHECK(plan.num_layers() == model.num_layers());
  Nanos total = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    if (plan.method(i) == ExecMethod::kDirectHostAccess) {
      total += perf_->DhaPcieTime(model.layer(i), batch);
    }
  }
  return total;
}

void Engine::RunWarm(const Model& model, const ExecutionPlan& plan, int batch,
                     std::function<void(InferenceResult)> done) {
  RunWarmFor(WarmDuration(model, plan, batch), std::move(done));
}

void Engine::RunWarmFor(Nanos duration, std::function<void(InferenceResult)> done) {
  const Nanos start = sim_->now();
  sim_->ScheduleAfter(duration, [this, start, duration, done = std::move(done)]() {
    InferenceResult result;
    result.latency = sim_->now() - start;
    result.exec_busy = duration;
    result.cold = false;
    done(result);
  });
}

}  // namespace deepplan
