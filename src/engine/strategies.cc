#include "src/engine/strategies.h"

#include "src/core/transmission.h"
#include "src/util/logging.h"

namespace deepplan {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBaseline:
      return "Baseline";
    case Strategy::kPipeSwitch:
      return "PipeSwitch";
    case Strategy::kDeepPlanDha:
      return "DeepPlan (DHA)";
    case Strategy::kDeepPlanPt:
      return "DeepPlan (PT)";
    case Strategy::kDeepPlanPtDha:
      return "DeepPlan (PT+DHA)";
  }
  return "?";
}

std::vector<Strategy> AllStrategies() {
  return {Strategy::kBaseline, Strategy::kPipeSwitch, Strategy::kDeepPlanDha,
          Strategy::kDeepPlanPt, Strategy::kDeepPlanPtDha};
}

int StrategyDegree(Strategy strategy, const Topology& topology, GpuId primary) {
  switch (strategy) {
    case Strategy::kBaseline:
    case Strategy::kPipeSwitch:
    case Strategy::kDeepPlanDha:
      return 1;
    case Strategy::kDeepPlanPt:
    case Strategy::kDeepPlanPtDha:
      return TransmissionPlanner::ChooseDegree(topology, primary);
  }
  return 1;
}

ExecutionPlan MakeStrategyPlan(Strategy strategy, const ModelProfile& profile,
                               int degree, const PipelineOptions& pipeline) {
  Planner planner(&profile);
  PlannerOptions options;
  options.pipeline = pipeline;
  switch (strategy) {
    case Strategy::kBaseline:
    case Strategy::kPipeSwitch:
      options.enable_dha = false;
      options.num_partitions = 1;
      break;
    case Strategy::kDeepPlanDha:
      options.enable_dha = true;
      options.num_partitions = 1;
      break;
    case Strategy::kDeepPlanPt:
      options.enable_dha = false;
      options.num_partitions = degree;
      break;
    case Strategy::kDeepPlanPtDha:
      options.enable_dha = true;
      options.num_partitions = degree;
      break;
  }
  return planner.GeneratePlan(options);
}

ColdRunOptions MakeColdRunOptions(Strategy strategy, int batch) {
  ColdRunOptions options;
  options.batch = batch;
  options.pipelined = strategy != Strategy::kBaseline;
  options.migration = MigrationMode::kPipelined;
  return options;
}

}  // namespace deepplan
