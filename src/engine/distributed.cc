#include "src/engine/distributed.h"

#include <memory>

#include "src/sim/stream.h"
#include "src/util/index.h"
#include "src/util/logging.h"

namespace deepplan {

DistributedEngine::DistributedEngine(Simulator* sim, ServerFabric* fabric,
                                     const PerfModel* perf)
    : sim_(sim), fabric_(fabric), perf_(perf) {
  DP_CHECK(sim != nullptr && fabric != nullptr && perf != nullptr);
}

std::int64_t DistributedEngine::BoundaryBytes(const Layer& layer, int batch) {
  // The output activation is roughly half the layer's in+out traffic; floor
  // at 4 KiB for control tensors.
  const std::int64_t bytes = layer.act_bytes / 2 * batch;
  return bytes < 4096 ? 4096 : bytes;
}

void DistributedEngine::RunCold(const Model& model, const ExecutionPlan& plan,
                                const std::vector<GpuId>& gpus,
                                const DistributedRunOptions& options,
                                std::function<void(InferenceResult)> done) {
  const std::size_t n = model.num_layers();
  DP_CHECK(plan.num_layers() == n);
  DP_CHECK(static_cast<int>(gpus.size()) >= plan.num_partitions());

  struct Run {
    Nanos start = 0;
    InferenceResult result;
    std::vector<std::unique_ptr<SyncEvent>> arrived;
    std::unique_ptr<Stream> exec;
  };
  auto run = std::make_shared<Run>();
  run->start = sim_->now();
  run->result.cold = true;
  run->result.partitions.resize(Idx(plan.num_partitions()));
  run->arrived.resize(n);
  run->exec = std::make_unique<Stream>(sim_, "exec/distributed");

  // Per-partition PCIe load chains to each partition's own GPU.
  std::vector<std::vector<std::size_t>> part_layers(Idx(plan.num_partitions()));
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.method(i) == ExecMethod::kLoad && model.layer(i).has_params()) {
      part_layers[Idx(plan.partition(i))].push_back(i);
      run->arrived[i] = std::make_unique<SyncEvent>(sim_);
      run->result.partitions[Idx(plan.partition(i))].bytes += model.layer(i).param_bytes;
    }
  }
  for (int p = 0; p < plan.num_partitions(); ++p) {
    if (part_layers[Idx(p)].empty()) {
      continue;
    }
    const GpuId target = gpus[Idx(p)];
    // Capture the per-layer byte list by value: the chain outlives this frame.
    std::vector<std::pair<std::size_t, std::int64_t>> items;
    items.reserve(part_layers[Idx(p)].size());
    for (const std::size_t li : part_layers[Idx(p)]) {
      items.emplace_back(li, model.layer(li).param_bytes);
    }
    // Weak self-capture: a strong one would be a shared_ptr cycle leaking the
    // closure and the run state it captures (see Engine::RunCold). In-flight
    // completions hold the strong reference until the chain drains.
    auto chain = std::make_shared<std::function<void(std::size_t)>>();
    std::weak_ptr<std::function<void(std::size_t)>> weak_chain = chain;
    *chain = [this, run, p, target, items = std::move(items),
              weak_chain](std::size_t k) {
      if (k >= items.size()) {
        return;
      }
      auto self = weak_chain.lock();
      DP_CHECK(self != nullptr);  // the caller holds a strong reference
      fabric_->fabric().Start(
          fabric_->HostToGpuPath(target), items[k].second,
          perf_->calibration().pcie_transfer_overhead,
          [this, run, p, li = items[k].first, k, self](Nanos) {
            run->arrived[li]->Fire();
            run->result.partitions[Idx(p)].pcie_done = sim_->now() - run->start;
            run->result.load_done =
                std::max(run->result.load_done, sim_->now() - run->start);
            (*self)(k + 1);
          });
    };
    (*chain)(0);
  }

  // Execution stream: walk layers in order; cross NVLink with the activation
  // at each partition boundary.
  int prev_part = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Layer& layer = model.layer(i);
    const int p = plan.partition(i);
    if (p != prev_part) {
      const GpuId from = gpus[Idx(prev_part)];
      const GpuId to = gpus[Idx(p)];
      const std::int64_t bytes =
          i > 0 ? BoundaryBytes(model.layer(i - 1), options.batch) : 4096;
      run->exec->Enqueue([this, from, to, bytes, options,
                          run](std::function<void()> op_done) {
        fabric_->fabric().Start(
            fabric_->GpuToGpuPath(from, to), bytes,
            fabric_->topology().nvlink().transfer_latency +
                options.boundary_sync_overhead,
            [op_done = std::move(op_done)](Nanos) { op_done(); });
      });
      prev_part = p;
    }
    if (plan.method(i) == ExecMethod::kLoad && layer.has_params()) {
      run->exec->EnqueueWait(run->arrived[i].get());
    }
    const Nanos exec = plan.method(i) == ExecMethod::kDirectHostAccess
                           ? perf_->ExecDha(layer, options.batch)
                           : perf_->ExecInMemory(layer, options.batch);
    run->exec->EnqueueDelay(exec);
    run->result.exec_busy += exec;
  }
  run->exec->EnqueueMarker([this, run, done = std::move(done)]() {
    run->result.latency = sim_->now() - run->start;
    run->result.stall = run->exec->wait_time();
    done(run->result);
  });
}

Nanos DistributedEngine::WarmDuration(const Model& model, const ExecutionPlan& plan,
                                      const std::vector<GpuId>& gpus,
                                      const DistributedRunOptions& options) const {
  DP_CHECK(plan.num_layers() == model.num_layers());
  DP_CHECK(static_cast<int>(gpus.size()) >= plan.num_partitions());
  const NvlinkSpec& nvlink = fabric_->topology().nvlink();
  Nanos total = 0;
  int prev_part = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const int p = plan.partition(i);
    if (p != prev_part) {
      const std::int64_t bytes =
          i > 0 ? BoundaryBytes(model.layer(i - 1), options.batch) : 4096;
      const double secs = static_cast<double>(bytes) / nvlink.bw_bytes_per_sec;
      total += nvlink.transfer_latency + options.boundary_sync_overhead +
               static_cast<Nanos>(secs * kNanosPerSecond);
      prev_part = p;
    }
    total += plan.method(i) == ExecMethod::kDirectHostAccess
                 ? perf_->ExecDha(model.layer(i), options.batch)
                 : perf_->ExecInMemory(model.layer(i), options.batch);
  }
  return total;
}

}  // namespace deepplan
