// The road not taken (Section 2.3): distributed execution. Instead of
// merging partitions onto the primary GPU over NVLink, leave each partition
// on the GPU that loaded it and run the inference *across* GPUs, paying a
// GPU-to-GPU activation transfer at every partition boundary — on the cold
// path AND on every warm inference thereafter. The paper rejects this because
// "it pays the cost of GPU-to-GPU communication while inferencing [and] can
// pose additional latency even for in-memory executions"; this module
// implements it so the ablation bench can quantify that argument.
#ifndef SRC_ENGINE_DISTRIBUTED_H_
#define SRC_ENGINE_DISTRIBUTED_H_

#include <functional>
#include <vector>

#include "src/engine/engine.h"

namespace deepplan {

struct DistributedRunOptions {
  int batch = 1;
  // Per-boundary synchronization cost (kernel on the next GPU cannot start
  // until the activation transfer's completion event is observed).
  Nanos boundary_sync_overhead = Micros(15);
};

class DistributedEngine {
 public:
  DistributedEngine(Simulator* sim, ServerFabric* fabric, const PerfModel* perf);

  // Cold start: partition p of `plan` loads onto gpus[p] over its own PCIe
  // lane (no NVLink weight forwarding); execution walks the layers in order,
  // crossing NVLink with the activation tensor wherever the partition index
  // changes. DHA layers execute from host memory on the GPU owning their
  // partition.
  void RunCold(const Model& model, const ExecutionPlan& plan,
               const std::vector<GpuId>& gpus, const DistributedRunOptions& options,
               std::function<void(InferenceResult)> done);

  // Steady-state latency once all partitions are resident: execution plus the
  // recurring boundary transfers. This is the "additional latency even for
  // in-memory executions" the paper calls out.
  Nanos WarmDuration(const Model& model, const ExecutionPlan& plan,
                     const std::vector<GpuId>& gpus,
                     const DistributedRunOptions& options) const;

 private:
  // Activation bytes crossing a boundary after layer i (its output tensor).
  static std::int64_t BoundaryBytes(const Layer& layer, int batch);

  Simulator* sim_;
  ServerFabric* fabric_;
  const PerfModel* perf_;
};

}  // namespace deepplan

#endif  // SRC_ENGINE_DISTRIBUTED_H_
