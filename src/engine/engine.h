// Event-driven execution engine: runs cold-start (provisioning + inference)
// and warm inferences on the simulated server fabric. This is the ground
// truth the analytic pipeline model approximates; under contention (multiple
// GPUs loading at once) only the engine is accurate, because transfers share
// PCIe switch uplinks through the max-min fair fabric.
//
// Per Section 4.3.4, a cold run uses three kinds of streams: a load stream
// per partition (host->GPU over PCIe), a migration stream per secondary GPU
// (GPU->GPU over NVLink), and one execute stream on the primary GPU gated on
// per-layer arrival events (cudaStreamWaitEvent semantics).
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/plan.h"
#include "src/hw/topology.h"
#include "src/obs/causal_graph.h"
#include "src/obs/trace_recorder.h"
#include "src/model/model.h"
#include "src/perf/perf_model.h"
#include "src/sim/fabric.h"
#include "src/sim/simulator.h"
#include "src/util/chrome_trace.h"
#include "src/util/time.h"

namespace deepplan {

// Topology-aware route table over a Fabric: one uplink link per PCIe switch,
// one downstream link per GPU, one link per NVLink-connected GPU pair.
class ServerFabric {
 public:
  ServerFabric(Simulator* sim, const Topology* topology);

  Fabric& fabric() { return fabric_; }
  const Topology& topology() const { return *topology_; }

  std::vector<LinkId> HostToGpuPath(GpuId gpu) const;
  std::vector<LinkId> GpuToGpuPath(GpuId from, GpuId to) const;

  LinkId pcie_link(GpuId gpu) const;

  // The route as causal-journal hops (link name + capacity), the per-link
  // overlap export the what-if replay engine rebuilds its fabric from.
  std::vector<CpHop> CausalHops(const std::vector<LinkId>& path) const;

 private:
  Simulator* sim_;
  const Topology* topology_;
  Fabric fabric_;
  std::vector<LinkId> uplink_of_switch_;
  std::vector<LinkId> pcie_of_gpu_;
  std::vector<std::vector<LinkId>> nvlink_;  // -1 when absent
};

// How partitions k>0 reach the primary GPU.
enum class MigrationMode {
  kPipelined,  // forward each layer as it lands (paper's parallel-pipeline)
  kBulk,       // forward the whole partition after it fully lands ("parallel")
};

struct PartitionStats {
  std::int64_t bytes = 0;   // parameter bytes shipped over this PCIe lane
  Nanos pcie_start = -1;    // first transfer start (relative to run start)
  Nanos pcie_done = 0;      // last byte over PCIe
  Nanos arrival_done = 0;   // last byte available on the primary GPU
};

struct InferenceResult {
  Nanos latency = 0;     // request start -> last layer executed
  Nanos exec_busy = 0;   // sum of layer execution times
  Nanos stall = 0;       // execute-stream idle time waiting on arrivals
  Nanos load_done = 0;   // all parameters resident on the primary GPU
  bool cold = false;
  std::vector<PartitionStats> partitions;
  // Per-operation timeline (only populated when ColdRunOptions.record_timeline
  // is set); exportable via ChromeTraceWriter.
  std::vector<TimelineEvent> timeline;
  // Last exec node recorded in the causal graph (-1 unless a graph was
  // attached and ColdRunOptions.causal_request was set); the caller passes it
  // to CausalGraph::EndRequest as the request's terminal node.
  CpNodeId causal_terminal = -1;
};

struct ColdRunOptions {
  int batch = 1;
  // false reproduces the Baseline: execution starts only after the full model
  // is resident.
  bool pipelined = true;
  MigrationMode migration = MigrationMode::kPipelined;
  // Record a per-operation timeline into InferenceResult::timeline (costs a
  // few allocations per layer; off in the serving hot path).
  bool record_timeline = false;
  // Consecutive parameterized layers coalesced into one PCIe transfer.
  // 1 = per-layer transmission (the paper's framing); larger groups amortize
  // the per-copy DMA setup like PipeSwitch's transmission groups, at the
  // cost of coarser pipelining. See bench/ablation_group_size.
  int transfer_group_layers = 1;
  // Causal-graph wiring (profiling): the request this cold run belongs to in
  // the graph attached via set_causal, and the node the run's first
  // operations hang off (an evict node, or the request's arrival node).
  // -1 disables node emission for this run.
  int causal_request = -1;
  CpNodeId causal_root = -1;
};

// Pooled cold-run bookkeeping (defined in engine.cc): an ObjectPool of
// ColdRun records backed by src/util/arena, so a million-cold-start replay
// recycles sync events, streams, and per-partition item lists instead of
// allocating them per run.
struct EngineScratch;

class Engine {
 public:
  Engine(Simulator* sim, ServerFabric* fabric, const PerfModel* perf);
  ~Engine();

  // Attaches a trace recorder: every cold-run load/migrate/exec operation is
  // then recorded as a span in *absolute* simulation time (track names match
  // the per-run timeline: "pcie/gpu<g>", "nvlink/<a>-><b>", "exec/gpu<g>"),
  // so one recorder covers all GPUs and requests of a whole server run —
  // independent of ColdRunOptions::record_timeline, which stays per-run and
  // run-relative. nullptr detaches; the disabled cost is one pointer test.
  void set_telemetry(TraceRecorder* recorder, int pid = 0);

  // Attaches a causal graph: cold runs whose options carry a causal_request
  // then record every PCIe transfer, NVLink migration, and layer execution as
  // a happens-before DAG node (with solo durations on transfers for
  // contention attribution). nullptr detaches; disabled cost is one pointer
  // test per operation.
  void set_causal(CausalGraph* graph) { causal_ = graph; }

  // Cold start: provision `model` according to `plan` onto `primary`
  // (partitions k>0 load via secondaries[k-1]) and execute one inference.
  // `done` fires at completion. Multiple concurrent runs interact through the
  // shared fabric.
  void RunCold(const Model& model, const ExecutionPlan& plan, GpuId primary,
               std::vector<GpuId> secondaries, const ColdRunOptions& options,
               std::function<void(InferenceResult)> done);

  // Warm inference: parameters already placed per `plan` (DHA layers execute
  // from host memory even when warm — that is DeepPlan's residency tradeoff).
  // Pass a default all-load plan for fully GPU-resident models.
  void RunWarm(const Model& model, const ExecutionPlan& plan, int batch,
               std::function<void(InferenceResult)> done);

  // Warm inference with a precomputed duration: behaves exactly like RunWarm
  // called on a (model, plan, batch) whose WarmDuration equals `duration`.
  // Serving hot loops cache WarmDuration per registered model (it is a pure
  // function of the plan) instead of re-summing every layer per request.
  void RunWarmFor(Nanos duration, std::function<void(InferenceResult)> done);

  // Duration a warm inference takes (closed form; RunWarm occupies this).
  Nanos WarmDuration(const Model& model, const ExecutionPlan& plan, int batch) const;

  // PCIe-bandwidth-dependent share of WarmDuration: the summed DHA parameter
  // streaming time of the plan's direct-host-access layers. Recorded on warm
  // exec nodes so the what-if engine can rescale them under virtual PCIe
  // speedups.
  Nanos WarmDhaPcieTime(const Model& model, const ExecutionPlan& plan,
                        int batch) const;

 private:
  Simulator* sim_;
  ServerFabric* fabric_;
  const PerfModel* perf_;
  TraceRecorder* recorder_ = nullptr;
  CausalGraph* causal_ = nullptr;
  int pid_ = 0;
  // Pairs async begin/end events for load/migrate intervals: concurrent cold
  // runs share PCIe/NVLink tracks, so their transfer slices may overlap and
  // cannot be exported as complete (nesting) slices.
  std::uint64_t next_async_id_ = 0;
  std::unique_ptr<EngineScratch> scratch_;
};

}  // namespace deepplan

#endif  // SRC_ENGINE_ENGINE_H_
